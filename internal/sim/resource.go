package sim

import (
	"container/list"
	"fmt"
	"sort"
)

// Server is a counting resource with FCFS admission: at most Capacity units
// are held at any instant, and waiters are granted strictly in arrival
// order. It models exclusive resources such as CPU cores on a node or
// download worker slots.
type Server struct {
	k        *Kernel
	capacity int
	inUse    int
	waiters  *list.List // of *acquireReq
}

type acquireReq struct {
	n       int
	granted func()
}

// NewServer returns a Server bound to kernel k with the given capacity.
func NewServer(k *Kernel, capacity int) *Server {
	if capacity <= 0 {
		panic("sim: server capacity must be positive")
	}
	return &Server{k: k, capacity: capacity, waiters: list.New()}
}

// Capacity returns the total number of units.
func (s *Server) Capacity() int { return s.capacity }

// InUse returns the number of units currently held.
func (s *Server) InUse() int { return s.inUse }

// Queued returns the number of pending acquire requests.
func (s *Server) Queued() int { return s.waiters.Len() }

// Acquire requests n units and invokes granted (via the event queue, at the
// current virtual instant or later) once they are available. Requests are
// served strictly in FCFS order; a large request at the head blocks smaller
// ones behind it, matching how a Slurm allocation holds the queue.
func (s *Server) Acquire(n int, granted func()) {
	if n <= 0 || n > s.capacity {
		panic(fmt.Sprintf("sim: acquire %d of capacity %d", n, s.capacity))
	}
	s.waiters.PushBack(&acquireReq{n: n, granted: granted})
	s.dispatch()
}

// Release returns n units to the server and admits any waiters that now fit.
func (s *Server) Release(n int) {
	if n <= 0 || n > s.inUse {
		panic(fmt.Sprintf("sim: release %d with %d in use", n, s.inUse))
	}
	s.inUse -= n
	s.dispatch()
}

func (s *Server) dispatch() {
	for s.waiters.Len() > 0 {
		front := s.waiters.Front()
		req := front.Value.(*acquireReq)
		if s.inUse+req.n > s.capacity {
			return
		}
		s.waiters.Remove(front)
		s.inUse += req.n
		// Deliver through the event queue so the grant callback never runs
		// inside the caller's stack frame; this keeps resource state
		// transitions atomic with respect to model code.
		s.k.At(s.k.Now(), req.granted)
	}
}

// FairShare is a processor-sharing resource: a fixed total capacity (units
// of work per virtual second) divided equally among all active jobs. It
// models bandwidth-like resources — node memory/IO bandwidth, a Lustre OST
// group, or a WAN link — whose per-client throughput degrades as clients
// are added. This contention model is what produces the sub-linear on-node
// worker scaling of Fig. 4a/5a in the paper.
type FairShare struct {
	k          *Kernel
	capacity   float64
	jobs       map[*ShareJob]struct{}
	lastSettle Time
	timer      *Event
	completed  uint64
	nextSeq    uint64
}

// ShareJob is one unit of in-progress work on a FairShare resource.
type ShareJob struct {
	remaining float64
	done      func()
	owner     *FairShare
	seq       uint64
}

// NewFairShare returns a FairShare resource with the given total capacity
// in work units per second.
func NewFairShare(k *Kernel, capacity float64) *FairShare {
	if capacity <= 0 {
		panic("sim: fair-share capacity must be positive")
	}
	return &FairShare{k: k, capacity: capacity, jobs: make(map[*ShareJob]struct{}), lastSettle: k.Now()}
}

// Capacity returns the total capacity in units per second.
func (f *FairShare) Capacity() float64 { return f.capacity }

// Active returns the number of jobs currently sharing the resource.
func (f *FairShare) Active() int { return len(f.jobs) }

// Completed returns the number of jobs that have finished.
func (f *FairShare) Completed() uint64 { return f.completed }

// Submit enqueues work units of demand and calls done when they have been
// served. Zero-demand jobs complete at the current instant (via the event
// queue).
func (f *FairShare) Submit(work float64, done func()) *ShareJob {
	if work < 0 {
		panic("sim: negative fair-share work")
	}
	j := &ShareJob{remaining: work, done: done, owner: f, seq: f.nextSeq}
	f.nextSeq++
	if work == 0 {
		f.k.At(f.k.Now(), func() {
			f.completed++
			if done != nil {
				done()
			}
		})
		return j
	}
	f.settle()
	f.jobs[j] = struct{}{}
	f.reschedule()
	return j
}

// Cancel abandons a job before completion; its done callback never runs.
// Cancelling a finished or already-cancelled job is a no-op.
func (f *FairShare) Cancel(j *ShareJob) {
	if _, ok := f.jobs[j]; !ok {
		return
	}
	f.settle()
	delete(f.jobs, j)
	f.reschedule()
}

// settle charges the elapsed interval since the last settle against every
// active job at the equal-share rate.
func (f *FairShare) settle() {
	now := f.k.Now()
	elapsed := float64(now - f.lastSettle)
	f.lastSettle = now
	if elapsed <= 0 || len(f.jobs) == 0 {
		return
	}
	rate := f.capacity / float64(len(f.jobs))
	for j := range f.jobs {
		j.remaining -= rate * elapsed
	}
}

// reschedule arms the completion timer for the job that will finish first
// under the current share.
func (f *FairShare) reschedule() {
	if f.timer != nil {
		f.k.Cancel(f.timer)
		f.timer = nil
	}
	if len(f.jobs) == 0 {
		return
	}
	minRemaining := Infinity
	for j := range f.jobs {
		if Time(j.remaining) < minRemaining {
			minRemaining = Time(j.remaining)
		}
	}
	share := f.capacity / float64(len(f.jobs))
	dt := Duration(float64(minRemaining) / share)
	if dt < 0 {
		dt = 0
	}
	f.timer = f.k.After(dt, f.complete)
}

// complete retires every job whose remaining work has reached zero.
func (f *FairShare) complete() {
	f.timer = nil
	f.settle()
	const eps = 1e-9
	var finished []*ShareJob
	for j := range f.jobs {
		if j.remaining <= eps {
			finished = append(finished, j)
		}
	}
	// Retire in submission order so callback ordering does not depend on
	// map iteration, keeping simulations bit-for-bit reproducible.
	sort.Slice(finished, func(i, j int) bool { return finished[i].seq < finished[j].seq })
	for _, j := range finished {
		delete(f.jobs, j)
	}
	f.reschedule()
	for _, j := range finished {
		f.completed++
		if j.done != nil {
			j.done()
		}
	}
}
