# Standard entry points for the eoml repo.
#
#   make check   — what CI runs: vet + full race-enabled test suite
#   make bench   — the hot-path benchmarks recorded in BENCH_1.json

GO ?= go

.PHONY: build test vet race bench bench-all check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Hot-path benchmarks from this PR (kernels, arena, batching).
bench:
	$(GO) test -run xxx -bench 'BenchmarkMatMulBlocked|BenchmarkEncodeArena|BenchmarkLabelFileBatched' -benchmem -benchtime 1s .

# Every figure/table/ablation benchmark in the repo.
bench-all:
	$(GO) test -run xxx -bench . -benchmem ./...

check: vet race
