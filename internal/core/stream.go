package core

import (
	"context"
	"fmt"

	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/parsl"
	"github.com/eoml/eoml/internal/stage"
)

// RunStream executes the workflow in streaming mode — the paper's §V
// extension to "batch as well as streaming data". Granule indices arrive
// on a channel (as they would from a satellite downlink feed); each
// arrival is downloaded and preprocessed immediately, the monitor/flow
// machinery labels tile files as they appear, and shipment happens once
// the stream closes and the backlog drains.
//
// Unlike Run, preprocessing is NOT delayed until all downloads finish:
// per-granule isolation (atomic writes, per-granule tile files) makes the
// partial-file hazard of the batch design structurally impossible here.
// The monitor+inference machinery and the shipment drain are the same
// stage objects Run composes; only the ingest stage differs.
func (p *Run) RunStream(ctx context.Context, arrivals <-chan int) (*Report, error) {
	rep, rc := p.newReport(0)
	svc := p.inferenceService()
	ship := p.shipment(svc)

	ingest := stage.Func("ingest", func(ctx context.Context, rc *stage.RunContext) error {
		return p.ingestStream(ctx, rc, arrivals, rep, svc)
	})

	err := stage.NewOrchestrator(rc).Execute(ctx, ingest, svc, ship)
	p.finish(rep, rc, svc, ship)
	if err != nil {
		// Partial report: telemetry and counts up to the failure point.
		return rep, fmt.Errorf("core: stream: %w", err)
	}
	return rep, nil
}

// ingestStream consumes the arrival feed: each granule's product triple
// is downloaded and its preprocessing app submitted to a persistent
// executor; once the stream closes, the preprocessing backlog drains and
// the inference service learns how many tile files to expect.
func (p *Run) ingestStream(ctx context.Context, rc *stage.RunContext, arrivals <-chan int, rep *Report, svc *stage.InferenceService) error {
	exec, err := parsl.NewHTEX(parsl.HTEXConfig{
		Label:          "stream-preprocess",
		WorkersPerNode: p.cfg.PreprocessWorkers,
		InitBlocks:     1,
		MaxBlocks:      1,
		OnWorkerChange: func(busy int) {
			rc.Timeline.Record("preprocess", rc.Since(), busy)
			rc.Health.Beat("preprocess")
		},
	})
	if err != nil {
		return err
	}
	exec.Instrument(p.metrics)
	if err := exec.Start(ctx); err != nil {
		return err
	}
	defer exec.Shutdown(ctx)
	dfk, err := parsl.NewDFK(exec, parsl.DFKConfig{Retries: 1})
	if err != nil {
		return err
	}

	// The paper's download and preprocess stages live inside this one
	// ingest stage in streaming mode; register their series eagerly so a
	// streaming /metrics scrape covers all five stages.
	for _, name := range []string{"download", "preprocess"} {
		rc.EventCounter(name, stage.EventIn)
		rc.EventCounter(name, stage.EventOut)
		rc.Health.Watch(name, 0)
	}

	client := laads.NewClient(p.cfg.ArchiveURL, p.cfg.ArchiveToken)
	client.Quota = p.quota
	client.Instrument(p.metrics)
	var futs []*parsl.AppFuture
	for open := true; open; {
		var idx int
		select {
		case idx, open = <-arrivals:
			if !open {
				continue
			}
		case <-ctx.Done():
			return ctx.Err()
		}
		if idx < 0 || idx >= modis.GranulesPerDay {
			return fmt.Errorf("granule index %d out of range", idx)
		}
		g := modis.GranuleID{Satellite: p.cfg.Satellite, Year: p.cfg.Year, DOY: p.cfg.DOY, Index: idx}
		rep.GranulesRequested++
		// In fleet mode the leased worker fetches the granule ref itself;
		// nothing downloads through this process.
		if p.cfg.Distribution != DistributionFleet {
			rc.Timeline.Record("download", rc.Since(), 1)
			var tasks []laads.Task
			for _, prod := range p.cfg.Products() {
				tasks = append(tasks, laads.Task{Product: prod, Year: g.Year, DOY: g.DOY, Name: modis.FileName(prod, g)})
			}
			rc.EventCounter("download", stage.EventIn).Add(int64(len(tasks)))
			dlRep, err := client.DownloadAll(ctx, tasks, p.cfg.DataDir, p.cfg.DownloadWorkers)
			if err != nil {
				return fmt.Errorf("download granule %d: %w", idx, err)
			}
			rep.FilesDownloaded += len(dlRep.Files)
			rep.BytesDownloaded += dlRep.TotalBytes
			rc.EventCounter("download", stage.EventOut).Add(int64(len(dlRep.Files)))
			rc.Health.Beat("download")
			rc.Timeline.Record("download", rc.Since(), 0)
		}
		rc.Health.Beat("download")

		rc.Event("preprocess", stage.EventIn)
		futs = append(futs, dfk.Submit(fmt.Sprintf("stream-tiles[%d]", idx), func(ctx context.Context) (any, error) {
			if p.cfg.Distribution == DistributionFleet {
				return p.preprocessViaFleet(ctx, g)
			}
			return p.preprocessGranule(g)
		}))
	}

	// Stream closed: drain preprocessing and publish the expectation.
	expect := 0
	for i, f := range futs {
		v, err := f.Get(ctx)
		if err != nil {
			return fmt.Errorf("preprocess %d: %w", i, err)
		}
		r := v.(preResult)
		rep.TilesProduced += r.tiles
		if r.hasFile {
			expect++
		}
		rc.Event("preprocess", stage.EventOut)
	}
	rep.TileFiles = expect
	svc.ExpectFiles(expect)
	rc.Health.Done("download")
	rc.Health.Done("preprocess")
	return exec.Shutdown(ctx)
}
