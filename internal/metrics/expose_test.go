package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func populated(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Counter("eoml_stage_events_total", "Events processed.", L("stage", "download"), L("dir", "in")).Add(7)
	r.Gauge("eoml_workers", "Busy workers.", L("executor", `htex "a"\b`)).Set(3)
	r.Histogram("eoml_stage_seconds", "Stage latency.", DurationBuckets(), L("stage", "inference")).Observe(0.42)
	r.GaugeFunc("eoml_queue_depth", "Queued tasks.", func() float64 { return 11 })
	return r
}

func TestServeHTTPPrometheus(t *testing.T) {
	r := populated(t)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP eoml_stage_events_total Events processed.",
		"# TYPE eoml_stage_events_total counter",
		`eoml_stage_events_total{stage="download",dir="in"} 7`,
		"# TYPE eoml_workers gauge",
		`eoml_workers{executor="htex \"a\"\\b"} 3`,
		"# TYPE eoml_stage_seconds histogram",
		`eoml_stage_seconds_bucket{stage="inference",le="0.5"} 1`,
		`eoml_stage_seconds_bucket{stage="inference",le="+Inf"} 1`,
		`eoml_stage_seconds_sum{stage="inference"} 0.42`,
		`eoml_stage_seconds_count{stage="inference"} 1`,
		"eoml_queue_depth 11",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	if err := ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
}

func TestServeHTTPJSON(t *testing.T) {
	r := populated(t)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var fams []Family
	if err := json.Unmarshal(rec.Body.Bytes(), &fams); err != nil {
		t.Fatalf("json: %v\n%s", err, rec.Body.String())
	}
	if len(fams) != 4 {
		t.Fatalf("families = %d, want 4", len(fams))
	}
	if fams[0].Name != "eoml_stage_events_total" || fams[0].Series[0].Value != 7 {
		t.Fatalf("unexpected first family %+v", fams[0])
	}

	// Accept header negotiation reaches the same encoder.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json")
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("Accept negotiation did not yield JSON:\n%s", rec.Body.String())
	}
}

func TestServeHTTPEmptyRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	NewRegistry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if body := rec.Body.String(); body != "" {
		t.Fatalf("empty registry rendered %q", body)
	}
	rec = httptest.NewRecorder()
	NewRegistry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if body := strings.TrimSpace(rec.Body.String()); body != "[]" {
		t.Fatalf("empty JSON = %q, want []", body)
	}
}

func TestValidatePrometheusRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":  "eoml_orphan_total 3\n",
		"malformed sample":     "# TYPE eoml_x counter\neoml_x{broken 3\n",
		"duplicate TYPE":       "# TYPE eoml_x counter\n# TYPE eoml_x counter\neoml_x 1\n",
		"bad TYPE kind":        "# TYPE eoml_x flavor\neoml_x 1\n",
		"suffix without histo": "# TYPE eoml_x counter\neoml_y_bucket{le=\"1\"} 1\n",
	}
	for name, in := range cases {
		if err := ValidatePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted %q", name, in)
		}
	}
	good := "# HELP eoml_ok some help\n# TYPE eoml_ok histogram\n" +
		"eoml_ok_bucket{le=\"1\"} 0\neoml_ok_bucket{le=\"+Inf\"} 2\neoml_ok_sum 3.5\neoml_ok_count 2\n"
	if err := ValidatePrometheus(strings.NewReader(good)); err != nil {
		t.Fatalf("validator rejected valid input: %v", err)
	}
}
