// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives the simulated-mode experiments of the EO-ML workflow:
// virtual time advances only when events fire, so a 10-node, 128-worker
// preprocessing campaign that takes minutes of "Defiant time" in the paper
// completes in milliseconds of wall time here while reporting the same
// virtual-time measurements.
//
// The kernel is callback-based: an event is a function scheduled at a
// virtual instant. Determinism is guaranteed by a strict (time, sequence)
// ordering — two events at the same instant fire in scheduling order.
// Kernels are not safe for concurrent use; a simulation runs on one
// goroutine by construction.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a virtual timestamp in seconds since the start of the simulation.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Infinity is a sentinel time later than any schedulable event.
const Infinity Time = math.MaxFloat64

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 once popped
	cancelled bool
}

// Time reports the virtual instant the event is (or was) scheduled for.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Kernel is a discrete-event simulator instance.
type Kernel struct {
	now     Time
	queue   eventHeap
	seq     uint64
	fired   uint64
	running bool
}

// NewKernel returns a kernel with the clock at zero and no pending events.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Fired reports how many events have executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending reports how many events are scheduled and not yet fired or
// cancelled.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.queue {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a logic error in the model, not a recoverable
// condition.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d seconds of virtual time from now. Negative
// delays panic.
func (k *Kernel) After(d Duration, fn func()) *Event {
	return k.At(k.now+d, fn)
}

// Cancel removes an event from the queue if it has not fired. It is safe to
// cancel an event twice or after it fired; later cancels are no-ops.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.cancelled || e.index < 0 {
		if e != nil {
			e.cancelled = true
		}
		return
	}
	e.cancelled = true
	heap.Remove(&k.queue, e.index)
}

// Run executes events in order until the queue drains, and returns the
// final virtual time.
func (k *Kernel) Run() Time {
	return k.RunUntil(Infinity)
}

// RunUntil executes events with timestamps <= deadline. The clock advances
// to the time of the last fired event (or to the deadline if it is not
// Infinity and events remain beyond it).
func (k *Kernel) RunUntil(deadline Time) Time {
	if k.running {
		panic("sim: RunUntil called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for len(k.queue) > 0 {
		next := k.queue[0]
		if next.at > deadline {
			if deadline != Infinity {
				k.now = deadline
			}
			return k.now
		}
		heap.Pop(&k.queue)
		if next.cancelled {
			continue
		}
		if next.at < k.now {
			panic("sim: event queue produced time travel")
		}
		k.now = next.at
		k.fired++
		next.fn()
	}
	if deadline != Infinity && deadline > k.now {
		k.now = deadline
	}
	return k.now
}

// Step fires exactly one event (skipping cancelled ones) and reports
// whether an event ran.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		next := heap.Pop(&k.queue).(*Event)
		if next.cancelled {
			continue
		}
		k.now = next.at
		k.fired++
		next.fn()
		return true
	}
	return false
}

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
