package eoml

import (
	"github.com/eoml/eoml/internal/pipereg"
	"github.com/eoml/eoml/internal/provenance"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/zambeze"
)

// This file exposes the §V roadmap extensions: provenance tracking,
// continual learning, the federated pipeline registry, and Zambeze-style
// cross-facility orchestration.

// ProvenanceStore records workflow lineage (W3C-PROV-style).
type ProvenanceStore = provenance.Store

// NewProvenanceStore returns an empty lineage graph. Attach it to a
// pipeline with Pipeline.SetProvenance; every Run then records the full
// granule→tiles→labels→shipped chain.
func NewProvenanceStore() *ProvenanceStore { return provenance.NewStore() }

// SchemaRegistry publishes component input/output contracts.
type SchemaRegistry = provenance.SchemaRegistry

// NewSchemaRegistry returns a registry preloaded with this workflow's
// component schemas (download, preprocess, inference, shipment).
func NewSchemaRegistry() (*SchemaRegistry, error) {
	r := provenance.NewSchemaRegistry()
	for _, s := range provenance.EOMLSchemas() {
		if err := r.Register(s); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// ReplayBuffer is a reservoir of past training tiles for continual
// learning.
type ReplayBuffer = ricc.ReplayBuffer

// NewReplayBuffer creates a reservoir of the given capacity.
func NewReplayBuffer(capacity int, seed int64) (*ReplayBuffer, error) {
	return ricc.NewReplayBuffer(capacity, seed)
}

// UpdateLabeler fine-tunes a labeler's encoder on newly observed tiles,
// replaying buffered history to avoid catastrophic forgetting — the
// paper's continual-learning extension. The AICCA codebook is kept
// fixed, so class identities remain stable across updates.
func UpdateLabeler(l *Labeler, newTiles []*Tile, buffer *ReplayBuffer, epochs int) error {
	return l.Model.ContinualUpdate(newTiles, buffer, epochs)
}

// LabelerDriftOn measures the mean reconstruction error of the labeler's
// autoencoder on a tile population — the forgetting metric for continual
// updates.
func LabelerDriftOn(l *Labeler, tiles []*Tile) (float64, error) {
	return l.Model.ReconstructionError(tiles)
}

// PipelineRegistry is the federated pipeline-as-a-service store.
type PipelineRegistry = pipereg.Registry

// RegisteredPipeline is one shareable workflow entry.
type RegisteredPipeline = pipereg.Pipeline

// NewPipelineRegistry returns a registry validating component chains
// against this workflow's published schemas.
func NewPipelineRegistry() (*PipelineRegistry, error) {
	schemas, err := NewSchemaRegistry()
	if err != nil {
		return nil, err
	}
	return pipereg.NewRegistry(schemas), nil
}

// EOMLRegisteredPipeline returns this repository's workflow as a
// publishable registry entry.
func EOMLRegisteredPipeline() RegisteredPipeline { return pipereg.EOMLPipeline() }

// Orchestrator dispatches campaigns across facility agents
// (Zambeze-style).
type Orchestrator = zambeze.Orchestrator

// FacilityAgent executes activities at one facility.
type FacilityAgent = zambeze.Agent

// Campaign is a cross-facility DAG of activities.
type Campaign = zambeze.Campaign

// CampaignActivity is one unit of a campaign.
type CampaignActivity = zambeze.Activity

// NewOrchestrator returns an empty cross-facility orchestrator.
func NewOrchestrator() *Orchestrator { return zambeze.NewOrchestrator() }

// NewFacilityAgent returns an agent for a facility with bounded
// concurrency.
func NewFacilityAgent(facility string, concurrency int) (*FacilityAgent, error) {
	return zambeze.NewAgent(facility, concurrency)
}
