// Package eoml is a multi-facility workflow system for AI applications in
// climate research — a from-scratch Go reproduction of the EO-ML workflow
// of Kurihana, Skluzacek, Ferreira da Silva, and Anantharaj (SC 2024):
// automated download of MODIS satellite products, parallel decomposition
// of swaths into ocean-cloud tiles, rotation-invariant autoencoder
// inference assigning AICCA cloud classes, and checksum-verified shipment
// of labeled NetCDF files to a destination facility.
//
// The package is a facade over the subsystems in internal/: a LAADS DAAC
// archive simulator served over real HTTP, Globus Compute/Flows/Transfer
// analogs, a Parsl-like dataflow kernel, a NetCDF-3 codec, the RICC
// autoencoder and agglomerative clustering stack, and a discrete-event
// simulator that regenerates every figure and table of the paper's
// evaluation.
//
// Quickstart:
//
//	cfg := eoml.DefaultConfig()
//	cfg.ArchiveURL = archiveURL // e.g. a local `laads-server`
//	cfg.DataDir, cfg.TileDir, cfg.OutboxDir, cfg.DestDir = ...
//	cfg.Granules = []int{144, 150}
//
//	labeler, _ := eoml.TrainFromArchive(ctx, cfg, eoml.TrainOptions{Classes: 8})
//	pipe, _ := eoml.NewPipeline(cfg, labeler)
//	report, _ := pipe.Run(ctx)
//	fmt.Println(report.Summary())
package eoml

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/core"
	"github.com/eoml/eoml/internal/fleet"
	"github.com/eoml/eoml/internal/hdf"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/serve"
	"github.com/eoml/eoml/internal/tile"
)

// Config declares one workflow run; see core.Config for field docs.
type Config = core.Config

// Report is the outcome of a pipeline run.
type Report = core.Report

// Pipeline is the five-stage workflow executor.
type Pipeline = core.Pipeline

// Labeler pairs the trained RICC model with the AICCA centroid codebook.
type Labeler = aicca.Labeler

// Tile is one ocean-cloud tile record.
type Tile = tile.Tile

// DefaultConfig returns a runnable baseline configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// LoadConfig parses a YAML workflow declaration.
func LoadConfig(data []byte) (*Config, error) { return core.LoadConfig(data) }

// LoadConfigFile reads a YAML workflow declaration from disk.
func LoadConfigFile(path string) (*Config, error) { return core.LoadConfigFile(path) }

// NewPipeline builds a pipeline for the config. labeler may be nil when
// the config names model and codebook files.
func NewPipeline(cfg Config, labeler *Labeler) (*Pipeline, error) {
	return core.New(cfg, labeler)
}

// Engine hosts N isolated workflow runs in one process, sharing model
// weights, decode arenas, and per-tenant archive quotas across them.
type Engine = core.Engine

// EngineOptions tunes a new Engine.
type EngineOptions = core.EngineOptions

// Run is one isolated execution built by Engine.NewRun.
type Run = core.Run

// RunOptions carries the per-run identity the control plane assigns.
type RunOptions = core.RunOptions

// NewEngine builds a multi-run engine.
func NewEngine(opts EngineOptions) *Engine { return core.NewEngine(opts) }

// QuotaPool hands out per-tenant archive-request token buckets.
type QuotaPool = laads.QuotaPool

// NewQuotaPool builds a quota pool granting each tenant requestsPerSec
// with the given burst; requestsPerSec <= 0 disables quotas (nil pool).
func NewQuotaPool(requestsPerSec float64, burst int) *QuotaPool {
	return laads.NewQuotaPool(requestsPerSec, burst)
}

// ControlPlane is the HTTP run API over an Engine: POST configs in,
// run IDs out, with per-run and aggregate observability endpoints.
type ControlPlane = serve.Server

// ControlPlaneOptions tunes a ControlPlane.
type ControlPlaneOptions = serve.Options

// NewControlPlane builds the run API handler over an engine.
func NewControlPlane(eng *Engine, opts ControlPlaneOptions) *ControlPlane {
	return serve.New(eng, opts)
}

// TenantHeader names the HTTP header carrying the submitting tenant.
const TenantHeader = serve.TenantHeader

// FleetCoordinator leases preprocess/inference tasks to registered
// eoml-worker processes: heartbeat liveness, in-flight bounds, lease
// requeue, work stealing, and elastic scale hints.
type FleetCoordinator = fleet.Coordinator

// FleetConfig tunes a FleetCoordinator.
type FleetConfig = fleet.Config

// NewFleetCoordinator builds a worker-fleet coordinator. Pass it to
// EngineOptions.Fleet so runs can declare `distribution: fleet`, and
// call Start to run its liveness sweep.
func NewFleetCoordinator(cfg FleetConfig) *FleetCoordinator {
	return fleet.NewCoordinator(cfg)
}

// FleetWorker is one worker process runtime: a compute endpoint serving
// the tile-extraction and labeling kernels, registered and heartbeating
// with the coordinator. cmd/eoml-worker is a thin main around it.
type FleetWorker = fleet.Worker

// FleetWorkerConfig tunes a FleetWorker.
type FleetWorkerConfig = fleet.WorkerConfig

// NewFleetWorker builds a fleet worker; Start makes it live.
func NewFleetWorker(cfg FleetWorkerConfig) (*FleetWorker, error) {
	return fleet.NewWorker(cfg)
}

// ArchiveOptions tunes a simulated LAADS DAAC archive server.
type ArchiveOptions struct {
	// ScaleDown divides granule resolution (1 = full 2030×1354 swaths).
	ScaleDown int
	// Token, when set, is required as a Bearer token.
	Token string
	// PerConnBytesPerSec / AggregateBytesPerSec shape bandwidth; 0 = off.
	PerConnBytesPerSec   int64
	AggregateBytesPerSec int64
}

// NewArchiveServer returns an http.Handler serving a synthetic MODIS
// archive with LAADS-style listing and download endpoints.
func NewArchiveServer(opts ArchiveOptions) (http.Handler, error) {
	return laads.NewServer(laads.ServerConfig{
		ScaleDown:            opts.ScaleDown,
		Token:                opts.Token,
		PerConnBytesPerSec:   opts.PerConnBytesPerSec,
		AggregateBytesPerSec: opts.AggregateBytesPerSec,
	})
}

// TrainOptions tunes TrainFromArchive.
type TrainOptions struct {
	// Granules to train on; defaults to the run's configured granules.
	Granules []int
	// Classes is the codebook size (42 for full AICCA; smaller for
	// container-scale runs). Default 8.
	Classes int
	// Epochs of autoencoder training. Default 4.
	Epochs int
	// LatentDim of the embedding. Default 32.
	LatentDim int
	// Seed for deterministic weights and shuffling.
	Seed int64
}

// TrainFromArchive performs the paper's offline stages — data
// acquisition, RICC training, clustering — against the configured
// archive: it downloads the training granules, extracts ocean-cloud
// tiles, fits the rotation-invariant autoencoder, and clusters the
// latents into the AICCA codebook.
func TrainFromArchive(ctx context.Context, cfg Config, opts TrainOptions) (*Labeler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Classes <= 0 {
		opts.Classes = 8
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 4
	}
	if opts.LatentDim <= 0 {
		opts.LatentDim = 32
	}
	indices := opts.Granules
	if len(indices) == 0 {
		indices = cfg.Granules
	}
	if len(indices) == 0 {
		return nil, fmt.Errorf("eoml: training needs granule indices")
	}

	trainDir, err := os.MkdirTemp("", "eoml-train-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(trainDir)

	client := laads.NewClient(cfg.ArchiveURL, cfg.ArchiveToken)
	var tasks []laads.Task
	var granules []modis.GranuleID
	for _, idx := range indices {
		g := modis.GranuleID{Satellite: cfg.Satellite, Year: cfg.Year, DOY: cfg.DOY, Index: idx}
		granules = append(granules, g)
		for _, prod := range cfg.Products() {
			tasks = append(tasks, laads.Task{Product: prod, Year: g.Year, DOY: g.DOY, Name: modis.FileName(prod, g)})
		}
	}
	if _, err := client.DownloadAll(ctx, tasks, trainDir, cfg.DownloadWorkers); err != nil {
		return nil, fmt.Errorf("eoml: training download: %w", err)
	}

	var tiles []*tile.Tile
	for _, g := range granules {
		read := func(kind modis.Kind) (*hdf.File, error) {
			prod := modis.Product{Satellite: g.Satellite, Kind: kind}
			return hdf.ReadFile(filepath.Join(trainDir, modis.FileName(prod, g)))
		}
		mod02, err := read(modis.L1B)
		if err != nil {
			return nil, err
		}
		mod03, err := read(modis.Geo)
		if err != nil {
			return nil, err
		}
		mod06, err := read(modis.Cloud)
		if err != nil {
			return nil, err
		}
		res, err := tile.Extract(mod02, mod03, mod06, tile.Options{
			TileSize:     cfg.TilePixels,
			MinCloudFrac: cfg.MinCloudFrac,
		})
		if err != nil {
			return nil, err
		}
		tiles = append(tiles, res.Tiles...)
	}
	if len(tiles) < opts.Classes {
		return nil, fmt.Errorf("eoml: only %d training tiles for %d classes; add granules", len(tiles), opts.Classes)
	}

	rcfg := ricc.DefaultConfig()
	rcfg.TileSize = cfg.TilePixels
	rcfg.Channels = len(modis.AICCABands)
	rcfg.LatentDim = opts.LatentDim
	rcfg.Epochs = opts.Epochs
	if opts.Seed != 0 {
		rcfg.Seed = opts.Seed
	}
	labeler, _, err := aicca.Train(tiles, rcfg, opts.Classes)
	if err != nil {
		return nil, err
	}
	return labeler, nil
}

// SaveLabeler persists the model and codebook.
func SaveLabeler(l *Labeler, modelPath, codebookPath string) error {
	if err := l.Model.Save(modelPath); err != nil {
		return err
	}
	return l.Codebook.Save(codebookPath)
}

// LoadLabeler restores a labeler saved with SaveLabeler.
func LoadLabeler(modelPath, codebookPath string) (*Labeler, error) {
	m, err := ricc.Load(modelPath)
	if err != nil {
		return nil, err
	}
	cb, err := ricc.LoadCodebook(codebookPath)
	if err != nil {
		return nil, err
	}
	return aicca.NewLabeler(m, cb)
}

// FindDayGranules scans the configured day for granule slots whose
// preprocessing would yield at least minTiles ocean-cloud tiles at the
// given archive resolution, returning up to want indices. Granule
// synthesis is deterministic, so this local scan agrees exactly with what
// the archive serves — it replaces the manual "pick a good swath" step a
// scientist would do against real LAADS listings.
func FindDayGranules(cfg Config, scaleDown, want, minTiles int) ([]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := modis.NewGenerator(scaleDown)
	if err != nil {
		return nil, err
	}
	var out []int
	for idx := 0; idx < modis.GranulesPerDay && len(out) < want; idx++ {
		g := modis.GranuleID{Satellite: cfg.Satellite, Year: cfg.Year, DOY: cfg.DOY, Index: idx}
		mod02, err := gen.Generate(modis.Product{Satellite: cfg.Satellite, Kind: modis.L1B}, g)
		if err != nil {
			return nil, err
		}
		if flag, _ := mod02.AttrString("DayNightFlag"); flag != "Day" {
			continue
		}
		mod03, err := gen.Generate(modis.Product{Satellite: cfg.Satellite, Kind: modis.Geo}, g)
		if err != nil {
			return nil, err
		}
		mod06, err := gen.Generate(modis.Product{Satellite: cfg.Satellite, Kind: modis.Cloud}, g)
		if err != nil {
			return nil, err
		}
		res, err := tile.Extract(mod02, mod03, mod06, tile.Options{
			TileSize:     cfg.TilePixels,
			MinCloudFrac: cfg.MinCloudFrac,
		})
		if err != nil {
			return nil, err
		}
		if len(res.Tiles) >= minTiles {
			out = append(out, idx)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("eoml: no productive granules on %d-%03d", cfg.Year, cfg.DOY)
	}
	return out, nil
}

// ReadTiles loads a tile NetCDF file (e.g. a shipped, labeled product).
func ReadTiles(path string) ([]*Tile, error) { return tile.ReadNetCDF(path) }

// ClassAtlas aggregates per-class physical statistics from labeled tiles.
func ClassAtlas(tiles []*Tile) []aicca.ClassStats { return aicca.Atlas(tiles) }

// GeoCell is one cell of a class-occurrence map.
type GeoCell = aicca.GeoCell

// GeoHistogram grids labeled tiles into cellDeg-degree cells with
// per-class occurrence counts — the spatial analysis AICCA publishes.
func GeoHistogram(tiles []*Tile, cellDeg float64) ([]GeoCell, error) {
	return aicca.GeoHistogram(tiles, cellDeg)
}
