package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/core"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/metrics"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/pipereg"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/serve"
	"github.com/eoml/eoml/internal/tile"
)

const testScale = 64 // tiny granules; tile edge 4 px

// productiveGranules returns day-side granule indices yielding at least
// minTiles ocean-cloud tiles at the test scale.
func productiveGranules(t *testing.T, want, minTiles int) []int {
	t.Helper()
	gen, err := modis.NewGenerator(testScale)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for idx := 0; idx < modis.GranulesPerDay && len(out) < want; idx++ {
		g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: idx}
		mod02, err := gen.Generate(modis.MOD021KM, g)
		if err != nil {
			t.Fatal(err)
		}
		if flag, _ := mod02.AttrString("DayNightFlag"); flag != "Day" {
			continue
		}
		mod03, _ := gen.Generate(modis.MOD03, g)
		mod06, _ := gen.Generate(modis.MOD06L2, g)
		res, err := tile.Extract(mod02, mod03, mod06, tile.Options{TileSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tiles) >= minTiles {
			out = append(out, idx)
		}
	}
	if len(out) < want {
		t.Fatalf("found only %d productive granules", len(out))
	}
	return out
}

// trainLabeler builds a tiny labeler from one granule's tiles.
func trainLabeler(t *testing.T, granuleIdx int) *aicca.Labeler {
	t.Helper()
	gen, _ := modis.NewGenerator(testScale)
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: granuleIdx}
	mod02, _ := gen.Generate(modis.MOD021KM, g)
	mod03, _ := gen.Generate(modis.MOD03, g)
	mod06, _ := gen.Generate(modis.MOD06L2, g)
	res, err := tile.Extract(mod02, mod03, mod06, tile.Options{TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ricc.Config{
		TileSize: 4, Channels: 6, LatentDim: 8, Beta: 0.3,
		LR: 2e-3, Epochs: 2, BatchSize: 16, Rotations: 1, Seed: 5,
	}
	k := 4
	if len(res.Tiles) < 8 {
		k = 2
	}
	labeler, _, err := aicca.Train(res.Tiles, cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	return labeler
}

func newArchive(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := laads.NewServer(laads.ServerConfig{ScaleDown: testScale, Token: "test-token"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// configYAML renders a run config for one granule with per-call
// directories (two runs must never share a tile or outbox dir).
func configYAML(t *testing.T, archiveURL string, granule int, model, codebook string) string {
	t.Helper()
	root := t.TempDir()
	var b strings.Builder
	fmt.Fprintf(&b, "satellite: Terra\nyear: 2022\ndoy: 1\ngranules: [%d]\n", granule)
	fmt.Fprintf(&b, "archive:\n  url: %s\n  token: test-token\n", archiveURL)
	fmt.Fprintf(&b, "paths:\n  data: %s\n  tiles: %s\n  outbox: %s\n  dest: %s\n",
		filepath.Join(root, "data"), filepath.Join(root, "tiles"),
		filepath.Join(root, "outbox"), filepath.Join(root, "dest"))
	b.WriteString("workers:\n  download: 3\n  preprocess: 4\ntile:\n  pixels: 4\npoll_interval_ms: 10\n")
	if model != "" {
		fmt.Fprintf(&b, "model:\n  weights: %s\n  codebook: %s\n", model, codebook)
	}
	return b.String()
}

// submitRun POSTs a config and returns the accepted run view.
func submitRun(t *testing.T, ts *httptest.Server, yaml, tenant string) pipereg.RunRecord {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/runs", strings.NewReader(yaml))
	if tenant != "" {
		req.Header.Set(serve.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec pipereg.RunRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d (%+v)", resp.StatusCode, rec)
	}
	if rec.ID == "" {
		t.Fatal("submit returned no run ID")
	}
	return rec
}

// pollUntilTerminal polls GET /runs/{id} until the run finishes.
func pollUntilTerminal(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/api/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view map[string]any
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		state := pipereg.RunState(view["state"].(string))
		if state.Terminal() {
			return view
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("run %s never reached a terminal state", id)
	return nil
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// TestServeSmoke is the end-to-end control-plane exercise `make
// serve-smoke` runs: model artifacts on disk, a real archive, a real
// listener; submit a run over HTTP naming the artifacts, poll it to
// success, and scrape both metric surfaces.
func TestServeSmoke(t *testing.T) {
	granules := productiveGranules(t, 1, 3)
	labeler := trainLabeler(t, granules[0])
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	cbPath := filepath.Join(dir, "codebook.bin")
	if err := labeler.Model.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	if err := labeler.Codebook.Save(cbPath); err != nil {
		t.Fatal(err)
	}
	archive := newArchive(t)

	eng := core.NewEngine(core.EngineOptions{Quotas: laads.NewQuotaPool(10_000, 64)})
	ts := httptest.NewServer(serve.New(eng, serve.Options{}))
	defer ts.Close()

	rec := submitRun(t, ts, configYAML(t, archive.URL, granules[0], modelPath, cbPath), "smoke")
	view := pollUntilTerminal(t, ts, rec.ID)
	if view["state"] != string(pipereg.StateSucceeded) {
		t.Fatalf("run finished %v: %v", view["state"], view["error"])
	}
	summary, _ := view["summary"].(string)
	if !strings.Contains(summary, "granules=1") || !strings.Contains(summary, "shipped=1") {
		t.Fatalf("summary = %q", summary)
	}

	// Per-run scrape: every series carries this run's labels.
	status, body := getBody(t, ts.URL+"/api/v1/runs/"+rec.ID+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("run metrics status = %d", status)
	}
	if !strings.Contains(body, `run="`+rec.ID+`"`) || !strings.Contains(body, `tenant="smoke"`) {
		t.Fatalf("run metrics missing run/tenant labels:\n%.400s", body)
	}
	if err := metrics.ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("run exposition invalid: %v", err)
	}

	// Aggregate scrape: control-plane series plus the run's series, one
	// valid exposition.
	status, body = getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("aggregate metrics status = %d", status)
	}
	for _, want := range []string{"eoml_serve_runs_submitted_total 1", "eoml_laads_quota_wait_seconds", `run="` + rec.ID + `"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("aggregate metrics missing %q:\n%.400s", want, body)
		}
	}
	if err := metrics.ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("aggregate exposition invalid: %v", err)
	}

	status, body = getBody(t, ts.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("healthz = %d %s", status, body)
	}
}

// TestServeTwoConcurrentRuns submits two runs back to back and verifies
// full isolation: both succeed, and each run's scrape carries only its
// own run label.
func TestServeTwoConcurrentRuns(t *testing.T) {
	granules := productiveGranules(t, 2, 3)
	labeler := trainLabeler(t, granules[0])
	archive := newArchive(t)
	eng := core.NewEngine(core.EngineOptions{Labeler: labeler})
	ts := httptest.NewServer(serve.New(eng, serve.Options{MaxConcurrentRuns: 2}))
	defer ts.Close()

	a := submitRun(t, ts, configYAML(t, archive.URL, granules[0], "", ""), "acme")
	b := submitRun(t, ts, configYAML(t, archive.URL, granules[1], "", ""), "umbrella")
	if a.ID == b.ID {
		t.Fatal("two submissions share an ID")
	}
	for _, id := range []string{a.ID, b.ID} {
		view := pollUntilTerminal(t, ts, id)
		if view["state"] != string(pipereg.StateSucceeded) {
			t.Fatalf("run %s finished %v: %v", id, view["state"], view["error"])
		}
	}
	_, bodyA := getBody(t, ts.URL+"/api/v1/runs/"+a.ID+"/metrics")
	_, bodyB := getBody(t, ts.URL+"/api/v1/runs/"+b.ID+"/metrics")
	if strings.Contains(bodyA, `run="`+b.ID+`"`) || strings.Contains(bodyB, `run="`+a.ID+`"`) {
		t.Fatal("a run's scrape leaked the other run's series")
	}
	if !strings.Contains(bodyA, `tenant="acme"`) || !strings.Contains(bodyB, `tenant="umbrella"`) {
		t.Fatal("tenant labels missing from per-run scrapes")
	}

	// The list endpoint shows both runs in submission order.
	_, listBody := getBody(t, ts.URL+"/api/v1/runs")
	if !strings.Contains(listBody, a.ID) || !strings.Contains(listBody, b.ID) {
		t.Fatalf("list missing runs:\n%s", listBody)
	}
}

// TestServeCancelMidRun starts a run whose downloads are throttled to a
// crawl by its tenant quota, cancels it over HTTP mid-flight, and
// verifies it lands in the canceled state.
func TestServeCancelMidRun(t *testing.T) {
	granules := productiveGranules(t, 1, 3)
	labeler := trainLabeler(t, granules[0])
	archive := newArchive(t)
	// One token up front, then one request per 100 seconds: the run's
	// download stage blocks inside Quota.Acquire until canceled.
	eng := core.NewEngine(core.EngineOptions{Labeler: labeler, Quotas: laads.NewQuotaPool(0.01, 1)})
	ts := httptest.NewServer(serve.New(eng, serve.Options{}))
	defer ts.Close()

	rec := submitRun(t, ts, configYAML(t, archive.URL, granules[0], "", ""), "slow")
	// Wait until the run is actually executing before canceling.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/api/v1/runs/" + rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if view["state"] == string(pipereg.StateRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run stuck in %v", view["state"])
		}
		time.Sleep(10 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/runs/"+rec.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	view := pollUntilTerminal(t, ts, rec.ID)
	if view["state"] != string(pipereg.StateCanceled) && view["state"] != string(pipereg.StateFailed) {
		t.Fatalf("canceled run finished %v", view["state"])
	}
	// A second cancel of a terminal run is refused.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/runs/"+rec.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel status = %d, want conflict", resp.StatusCode)
	}
}

// TestServeEvictionDropsRunSeries runs three campaigns through a
// server retaining one terminal run: the evicted runs must disappear
// from the list, the API, and the aggregate scrape — the reference
// release that keeps per-run registries GC-able.
func TestServeEvictionDropsRunSeries(t *testing.T) {
	granules := productiveGranules(t, 1, 3)
	labeler := trainLabeler(t, granules[0])
	archive := newArchive(t)
	eng := core.NewEngine(core.EngineOptions{Labeler: labeler})
	ts := httptest.NewServer(serve.New(eng, serve.Options{RetainRuns: 1}))
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		rec := submitRun(t, ts, configYAML(t, archive.URL, granules[0], "", ""), "")
		view := pollUntilTerminal(t, ts, rec.ID)
		if view["state"] != string(pipereg.StateSucceeded) {
			t.Fatalf("run %d finished %v: %v", i, view["state"], view["error"])
		}
		ids = append(ids, rec.ID)
	}
	if status, _ := getBody(t, ts.URL+"/api/v1/runs/"+ids[0]); status != http.StatusNotFound {
		t.Fatalf("evicted run still served: status %d", status)
	}
	_, body := getBody(t, ts.URL+"/metrics")
	if strings.Contains(body, `run="`+ids[0]+`"`) {
		t.Fatal("aggregate scrape still carries an evicted run's series")
	}
	if !strings.Contains(body, `run="`+ids[2]+`"`) {
		t.Fatal("aggregate scrape lost the retained run's series")
	}
	// Control-plane counters survive eviction — they live on the
	// server's own registry, not any run's.
	if !strings.Contains(body, "eoml_serve_runs_submitted_total 3") {
		t.Fatalf("submission counter wrong:\n%.300s", body)
	}
}

// TestServeRejectsBadConfig covers the submission guardrails.
func TestServeRejectsBadConfig(t *testing.T) {
	labeler := trainLabeler(t, productiveGranules(t, 1, 3)[0])
	eng := core.NewEngine(core.EngineOptions{Labeler: labeler})
	ts := httptest.NewServer(serve.New(eng, serve.Options{}))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/v1/runs", "application/yaml", strings.NewReader("year: [not an int\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad config status = %d", resp.StatusCode)
	}
	if status, _ := getBody(t, ts.URL+"/api/v1/runs/run-999999"); status != http.StatusNotFound {
		t.Fatalf("unknown run status = %d", status)
	}
	_, body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, "eoml_serve_runs_rejected_total 1") {
		t.Fatalf("rejection counter missing:\n%.300s", body)
	}
}

// TestServeRunsQueueBeyondLimit submits more runs than the concurrency
// bound and verifies they all eventually succeed (queued as pending,
// never dropped).
func TestServeRunsQueueBeyondLimit(t *testing.T) {
	granules := productiveGranules(t, 1, 3)
	labeler := trainLabeler(t, granules[0])
	archive := newArchive(t)
	eng := core.NewEngine(core.EngineOptions{Labeler: labeler})
	ts := httptest.NewServer(serve.New(eng, serve.Options{MaxConcurrentRuns: 1, RetainRuns: 8}))
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submitRun(t, ts, configYAML(t, archive.URL, granules[0], "", ""), "").ID)
	}
	for _, id := range ids {
		view := pollUntilTerminal(t, ts, id)
		if view["state"] != string(pipereg.StateSucceeded) {
			t.Fatalf("run %s finished %v: %v", id, view["state"], view["error"])
		}
	}
}
