package metrics

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Stage liveness states as reported on /healthz.
const (
	StatePending = "pending" // watched, no phase entered yet
	StateRunning = "running" // between Run start and success
	StateDone    = "done"    // finished cleanly; exempt from stall checks
	StateFailed  = "failed"  // a phase errored; the run is unhealthy
)

// Health tracks per-stage liveness for /healthz. Stages are Watched
// with a stall budget, Beat on every unit of progress, and marked Done
// or Failed by the orchestrator. The run is unhealthy when any stage
// has Failed, or when an active stage with a positive stall budget has
// not Beat within it — the live counterpart of the inference service's
// stall_timeout_ms abort.
//
// A nil *Health is valid: all mutators are no-ops and the state reads
// healthy, mirroring the nil *Registry convention.
type Health struct {
	mu     sync.Mutex
	now    func() time.Time
	order  []string
	stages map[string]*liveness
}

type liveness struct {
	stallAfter time.Duration
	lastBeat   time.Time
	state      string
}

// NewHealth returns an empty health tracker.
func NewHealth() *Health {
	return &Health{now: time.Now, stages: map[string]*liveness{}}
}

// SetClock replaces the time source (tests).
func (h *Health) SetClock(now func() time.Time) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.now = now
	h.mu.Unlock()
}

// stage finds or creates the named stage entry. Caller holds h.mu.
func (h *Health) stage(name string) *liveness {
	l, ok := h.stages[name]
	if !ok {
		l = &liveness{state: StatePending, lastBeat: h.now()}
		h.stages[name] = l
		h.order = append(h.order, name)
	}
	return l
}

// Watch registers a stage with a stall budget: if the stage is active
// and does not Beat for longer than stallAfter, /healthz reports it
// stalled. stallAfter <= 0 means the stage is tracked for state only
// and never considered stalled. Re-watching updates the budget.
func (h *Health) Watch(name string, stallAfter time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	l := h.stage(name)
	l.stallAfter = stallAfter
	l.lastBeat = h.now()
}

// Beat records progress for a stage, resetting its stall clock.
func (h *Health) Beat(name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	l := h.stage(name)
	l.lastBeat = h.now()
	if l.state == StatePending {
		l.state = StateRunning
	}
}

// SetState moves a stage to the given state, beating its stall clock.
func (h *Health) SetState(name, state string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	l := h.stage(name)
	l.state = state
	l.lastBeat = h.now()
}

// Done marks a stage finished cleanly (exempt from stall checks).
func (h *Health) Done(name string) { h.SetState(name, StateDone) }

// Fail marks a stage failed; the run stays unhealthy.
func (h *Health) Fail(name string) { h.SetState(name, StateFailed) }

// StageHealth is the reported state of one stage.
type StageHealth struct {
	Stage             string  `json:"stage"`
	State             string  `json:"state"`
	SinceBeatSeconds  float64 `json:"since_beat_seconds"`
	StallAfterSeconds float64 `json:"stall_after_seconds,omitempty"`
	Stalled           bool    `json:"stalled,omitempty"`
}

// Check reports overall health and the per-stage detail, in Watch
// order. A nil *Health is healthy with no stages.
func (h *Health) Check() (healthy bool, stages []StageHealth) {
	if h == nil {
		return true, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	healthy = true
	for _, name := range h.order {
		l := h.stages[name]
		sh := StageHealth{
			Stage:             name,
			State:             l.state,
			SinceBeatSeconds:  now.Sub(l.lastBeat).Seconds(),
			StallAfterSeconds: l.stallAfter.Seconds(),
		}
		active := l.state == StatePending || l.state == StateRunning
		if active && l.stallAfter > 0 && now.Sub(l.lastBeat) > l.stallAfter {
			sh.Stalled = true
		}
		if sh.Stalled || l.state == StateFailed {
			healthy = false
		}
		stages = append(stages, sh)
	}
	return healthy, stages
}

// Healthy reports whether no stage is stalled or failed.
func (h *Health) Healthy() bool {
	ok, _ := h.Check()
	return ok
}

// healthResponse is the /healthz JSON body.
type healthResponse struct {
	Status string        `json:"status"`
	Stages []StageHealth `json:"stages"`
}

// ServeHTTP renders /healthz: HTTP 200 with {"status":"ok",...} while
// every stage is live, 503 with {"status":"unhealthy",...} once any
// stage stalls past its budget or fails.
func (h *Health) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	healthy, stages := h.Check()
	resp := healthResponse{Status: "ok", Stages: stages}
	if resp.Stages == nil {
		resp.Stages = []StageHealth{}
	}
	code := http.StatusOK
	if !healthy {
		resp.Status = "unhealthy"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}
