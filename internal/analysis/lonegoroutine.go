package analysis

import (
	"go/ast"
	"go/types"
)

// LoneGoroutine flags `go func(){...}()` literals with no visible join
// discipline. A goroutine the spawner cannot wait for outlives runs,
// leaks on error paths, and races teardown — PR 1's goroutine-per-event
// spawn was exactly this. A literal counts as joined when its body (or a
// nested literal, e.g. a deferred closure) signals completion: it calls
// Done on a sync.WaitGroup, closes a channel, or sends on a channel the
// spawner can drain. Named-function goroutines (`go s.worker()`) are out
// of scope; their join lives at the callee and is audited there.
var LoneGoroutine = &Analyzer{
	Name:      "lonegoroutine",
	Doc:       "go func literals must signal completion (WaitGroup.Done, channel close, or channel send) so the spawner can join them",
	AppliesTo: internalOnly,
	Run:       runLoneGoroutine,
}

func runLoneGoroutine(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !signalsCompletion(pass, lit.Body) {
				pass.Reportf(g.Pos(), "goroutine literal has no join: nothing in its body calls WaitGroup.Done, closes a channel, or sends on one")
			}
			return true
		})
	}
}

// signalsCompletion reports whether the body contains any completion
// signal a spawner could join on.
func signalsCompletion(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, n)
			if isMethodOn(fn, "sync", "WaitGroup", "Done") {
				found = true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
