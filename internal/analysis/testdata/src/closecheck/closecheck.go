// Package closecheck is the golden fixture for the closecheck analyzer.
package closecheck

import (
	"bufio"
	"os"
)

func badBareClose(f *os.File) {
	f.Close() // want "Close error discarded"
}

func badBareSync(f *os.File) {
	f.Sync() // want "Sync error discarded"
}

func badBareFlush(w *bufio.Writer) {
	w.Flush() // want "Flush error discarded"
}

func badBareRename() {
	os.Rename("a", "b") // want "os.Rename error discarded"
}

func badDeferOnWritePath(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "write-path close error"
	_, err = f.WriteString("data")
	return err
}

func badDeferOnOpenFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want "write-path close error"
	return nil
}

func goodExplicitDiscard(f *os.File) {
	_ = f.Close()
}

func goodChecked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func goodDeferOnReadPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

func goodWritePathFoldedIntoReturn(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	_, err = f.WriteString("data")
	return err
}

type quiet struct{}

func (quiet) Close() {}

func goodNoErrorResult(q quiet) {
	q.Close()
}
