package fleet_test

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/core"
	"github.com/eoml/eoml/internal/fleet"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/tile"
)

const testScale = 64 // tiny granules; tile edge 4 px

// productiveGranules returns day-side granule indices yielding at least
// minTiles ocean-cloud tiles at the test scale.
func productiveGranules(t *testing.T, want, minTiles int) []int {
	t.Helper()
	gen, err := modis.NewGenerator(testScale)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for idx := 0; idx < modis.GranulesPerDay && len(out) < want; idx++ {
		g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: idx}
		mod02, err := gen.Generate(modis.MOD021KM, g)
		if err != nil {
			t.Fatal(err)
		}
		if flag, _ := mod02.AttrString("DayNightFlag"); flag != "Day" {
			continue
		}
		mod03, _ := gen.Generate(modis.MOD03, g)
		mod06, _ := gen.Generate(modis.MOD06L2, g)
		res, err := tile.Extract(mod02, mod03, mod06, tile.Options{TileSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tiles) >= minTiles {
			out = append(out, idx)
		}
	}
	if len(out) < want {
		t.Fatalf("found only %d productive granules", len(out))
	}
	return out
}

// trainAndSave fits a tiny labeler on one granule's tiles and saves the
// artifacts, returning (modelPath, codebookPath).
func trainAndSave(t *testing.T, granuleIdx int) (string, string) {
	t.Helper()
	gen, _ := modis.NewGenerator(testScale)
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: granuleIdx}
	mod02, _ := gen.Generate(modis.MOD021KM, g)
	mod03, _ := gen.Generate(modis.MOD03, g)
	mod06, _ := gen.Generate(modis.MOD06L2, g)
	res, err := tile.Extract(mod02, mod03, mod06, tile.Options{TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ricc.Config{
		TileSize: 4, Channels: 6, LatentDim: 8, Beta: 0.3,
		LR: 2e-3, Epochs: 2, BatchSize: 16, Rotations: 1, Seed: 5,
	}
	k := 4
	if len(res.Tiles) < 8 {
		k = 2
	}
	labeler, _, err := aicca.Train(res.Tiles, cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "ricc.hdf")
	codebook := filepath.Join(dir, "codebook.hdf")
	if err := labeler.Model.Save(model); err != nil {
		t.Fatal(err)
	}
	if err := labeler.Codebook.Save(codebook); err != nil {
		t.Fatal(err)
	}
	return model, codebook
}

func newArchive(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := laads.NewServer(laads.ServerConfig{ScaleDown: testScale, Token: "test-token"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// runConfig builds a run config over its own directory tree.
func runConfig(t *testing.T, archiveURL string, granules []int, model, codebook, distribution string) core.Config {
	t.Helper()
	root := t.TempDir()
	cfg := core.DefaultConfig()
	cfg.Granules = granules
	cfg.ArchiveURL = archiveURL
	cfg.ArchiveToken = "test-token"
	cfg.DataDir = filepath.Join(root, "data")
	cfg.TileDir = filepath.Join(root, "tiles")
	cfg.OutboxDir = filepath.Join(root, "outbox")
	cfg.DestDir = filepath.Join(root, "dest")
	cfg.PreprocessWorkers = 4
	cfg.TilePixels = 4
	cfg.PollInterval = 10 * time.Millisecond
	cfg.ModelPath = model
	cfg.CodebookPath = codebook
	cfg.Distribution = distribution
	return cfg
}

// destLabels reads every shipped NetCDF in the run's dest dir and
// returns file base name -> label sequence.
func destLabels(t *testing.T, destDir string) map[string][]int16 {
	t.Helper()
	entries, err := os.ReadDir(destDir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]int16{}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".nc" {
			continue
		}
		tiles, err := tile.ReadNetCDF(filepath.Join(destDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		labels := make([]int16, len(tiles))
		for i, tl := range tiles {
			labels[i] = tl.Label
		}
		out[e.Name()] = labels
	}
	return out
}

// startWorkers brings up n in-process fleet workers against a
// coordinator served over HTTP and returns their Stop functions' owner.
func startWorkers(t *testing.T, coordinatorURL string, n, slots int) {
	t.Helper()
	for i := 0; i < n; i++ {
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			ID:             "eq-worker-" + string(rune('a'+i)),
			CoordinatorURL: coordinatorURL,
			Slots:          slots,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
}

// TestFleetMatchesLocalLabels is the acceptance property: the same
// granules, model, and codebook must produce identical AICCA labels
// whether the run executes in-process or fleet-distributed.
func TestFleetMatchesLocalLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end equivalence run")
	}
	archive := newArchive(t)
	granules := productiveGranules(t, 2, 2)
	model, codebook := trainAndSave(t, granules[0])
	ctx := context.Background()

	// Local run.
	localCfg := runConfig(t, archive.URL, granules, model, codebook, core.DistributionLocal)
	localEng := core.NewEngine(core.EngineOptions{})
	localRun, err := localEng.NewRun(localCfg, core.RunOptions{ID: "local"})
	if err != nil {
		t.Fatal(err)
	}
	localRep, err := localRun.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Fleet run: coordinator behind a real HTTP control plane, two
	// worker "processes" leasing the same kernels.
	coord := fleet.NewCoordinator(fleet.Config{})
	defer coord.Close()
	cp := httptest.NewServer(coord.Handler())
	defer cp.Close()
	startWorkers(t, cp.URL, 2, 2)

	fleetCfg := runConfig(t, archive.URL, granules, model, codebook, core.DistributionFleet)
	fleetEng := core.NewEngine(core.EngineOptions{Fleet: coord})
	fleetRun, err := fleetEng.NewRun(fleetCfg, core.RunOptions{ID: "fleet"})
	if err != nil {
		t.Fatal(err)
	}
	fleetRep, err := fleetRun.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if localRep.TilesLabeled == 0 {
		t.Fatal("local run labeled no tiles; test corpus is empty")
	}
	if localRep.TilesLabeled != fleetRep.TilesLabeled {
		t.Fatalf("tiles labeled: local %d, fleet %d", localRep.TilesLabeled, fleetRep.TilesLabeled)
	}

	localLabels := destLabels(t, localCfg.DestDir)
	fleetLabels := destLabels(t, fleetCfg.DestDir)
	if len(localLabels) == 0 {
		t.Fatal("local run shipped no files")
	}
	var names []string
	for name := range localLabels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fl, ok := fleetLabels[name]
		if !ok {
			t.Fatalf("fleet run missing shipped file %s", name)
		}
		ll := localLabels[name]
		if len(fl) != len(ll) {
			t.Fatalf("%s: local %d labels, fleet %d", name, len(ll), len(fl))
		}
		for i := range ll {
			if ll[i] != fl[i] {
				t.Fatalf("%s tile %d: local label %d, fleet label %d", name, i, ll[i], fl[i])
			}
		}
	}
	if len(fleetLabels) != len(localLabels) {
		t.Fatalf("shipped files: local %d, fleet %d", len(localLabels), len(fleetLabels))
	}
}

// TestEngineRejectsFleetConfigWithoutCoordinator pins the NewRun guard.
func TestEngineRejectsFleetConfigWithoutCoordinator(t *testing.T) {
	model, codebook := trainAndSave(t, productiveGranules(t, 1, 1)[0])
	cfg := runConfig(t, "http://unused", []int{0}, model, codebook, core.DistributionFleet)
	if _, err := core.NewEngine(core.EngineOptions{}).NewRun(cfg, core.RunOptions{}); err == nil {
		t.Fatal("NewRun accepted fleet distribution without a coordinator")
	}
}
