// Package stage is the unified stage-orchestration layer of the
// workflow: the five paper stages (download → preprocess → monitor &
// trigger → inference → shipment) are first-class Stage values with a
// shared lifecycle, and an Orchestrator drives any composition of them
// over one RunContext. The batch and streaming pipelines in
// internal/core are thin drivers that pick a stage order; everything
// they share — run directories, the telemetry epoch, timelines and
// spans, error aggregation, cancellation semantics — lives here once.
//
// Lifecycle. Each stage moves through up to four phases:
//
//		setup → run → drain → close
//
//	  - Setup (optional) runs for every stage, in listed order, before any
//	    stage's Run. Long-lived services arm their background machinery
//	    here (e.g. the inference crawler starts watching before the first
//	    tile file exists), which is what lets inference overlap
//	    preprocessing exactly as in the paper's Fig. 6.
//	  - Run executes in listed order and is the stage's synchronous turn:
//	    a download stage fans out and blocks, a service stage blocks until
//	    its completion condition holds. The first Run error aborts the
//	    remaining runs and the drain phase.
//	  - Drain (optional) runs in listed order after every Run succeeded;
//	    it gracefully retires background work (stop the crawler, join the
//	    worker pool, flush the batcher).
//	  - Close (optional) always runs, in reverse order, for every stage
//	    whose Setup succeeded — including on error and cancellation paths,
//	    so a failed run never leaks goroutines. Close must be idempotent.
//
// Error semantics. Every phase error is collected and the orchestrator
// returns errors.Join of all of them; if the context was cancelled the
// context error is part of the join, so errors.Is(err, context.Canceled)
// holds for any cancelled run regardless of which stage observed the
// cancellation first.
package stage

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/eoml/eoml/internal/metrics"
	"github.com/eoml/eoml/internal/trace"
)

// RunContext is the state one workflow run shares across all stages:
// the telemetry epoch and sinks, and the directories the run needs on
// disk. Stages receive the same RunContext in every phase.
type RunContext struct {
	// Epoch is the workflow start; Since and all Timeline/Spans offsets
	// are measured from it.
	Epoch time.Time
	// Timeline receives worker-activity samples (Fig. 6).
	Timeline *trace.Timeline
	// Spans receives one latency span per stage (Fig. 7), recorded by
	// the orchestrator around each stage's Run (extended through Drain
	// for stages that drain).
	Spans *trace.Spans
	// Metrics receives live per-stage series (events, failures,
	// latency). Nil is valid: stages instrument unconditionally and the
	// increments go to throwaway metrics.
	Metrics *metrics.Registry
	// Health tracks per-stage liveness for /healthz. Nil is valid.
	Health *metrics.Health
	// Dirs are created (MkdirAll) before the setup phase.
	Dirs []string
}

// Since returns seconds elapsed since the run epoch.
func (rc *RunContext) Since() float64 { return time.Since(rc.Epoch).Seconds() }

// Metric names and label values exported by the stage layer. EventIn
// counts units of work a stage accepted, EventOut units it completed;
// what a "unit" is (a granule, a tile file, a shipped product) is the
// stage's choice and documented in docs/OPERATIONS.md.
const (
	MetricStageEvents   = "eoml_stage_events_total"
	MetricStageFailures = "eoml_stage_failures_total"
	MetricStageSeconds  = "eoml_stage_seconds"
	EventIn             = "in"
	EventOut            = "out"
)

// EventCounter returns the events counter for a stage and direction
// (EventIn or EventOut), registering it on first use.
func (rc *RunContext) EventCounter(stageName, dir string) *metrics.Counter {
	return rc.Metrics.Counter(MetricStageEvents,
		"Units of work accepted (dir=in) and completed (dir=out) per pipeline stage.",
		metrics.L("stage", stageName), metrics.L("dir", dir))
}

// Event counts one completed unit of work for a stage in both sinks:
// the events counter and the stage's health stall clock.
func (rc *RunContext) Event(stageName, dir string) {
	rc.EventCounter(stageName, dir).Inc()
	rc.Health.Beat(stageName)
}

// instrument eagerly registers a stage's metric series and health entry
// so the catalogue is complete before any work happens.
func (rc *RunContext) instrument(stageName string) {
	rc.EventCounter(stageName, EventIn)
	rc.EventCounter(stageName, EventOut)
	rc.failures(stageName)
	rc.seconds(stageName)
	rc.Health.Watch(stageName, 0)
}

func (rc *RunContext) failures(stageName string) *metrics.Counter {
	return rc.Metrics.Counter(MetricStageFailures,
		"Stage lifecycle-phase errors observed by the orchestrator.",
		metrics.L("stage", stageName))
}

func (rc *RunContext) seconds(stageName string) *metrics.Histogram {
	return rc.Metrics.Histogram(MetricStageSeconds,
		"Wall-clock seconds per stage (Run, extended through Drain for stages that drain).",
		metrics.DurationBuckets(), metrics.L("stage", stageName))
}

// Stage is one unit of the workflow. Run is the stage's synchronous
// turn in driver order; stages with background machinery additionally
// implement Setupper, Drainer, and Closer.
type Stage interface {
	Name() string
	Run(ctx context.Context, rc *RunContext) error
}

// Setupper is implemented by stages that must arm resources before any
// stage runs (the setup phase).
type Setupper interface {
	Setup(ctx context.Context, rc *RunContext) error
}

// Drainer is implemented by stages with background work to retire
// gracefully after every Run succeeded (the drain phase).
type Drainer interface {
	Drain(ctx context.Context, rc *RunContext) error
}

// Closer is implemented by stages holding resources that must be
// released on every exit path. Close must be idempotent and safe to
// call after a failed or skipped Run.
type Closer interface {
	Close() error
}

// funcStage adapts a plain function to Stage.
type funcStage struct {
	name string
	run  func(ctx context.Context, rc *RunContext) error
}

func (f *funcStage) Name() string { return f.name }

func (f *funcStage) Run(ctx context.Context, rc *RunContext) error { return f.run(ctx, rc) }

// Func wraps a function as a run-phase-only stage.
func Func(name string, run func(ctx context.Context, rc *RunContext) error) Stage {
	return &funcStage{name: name, run: run}
}

// Orchestrator drives stages through the shared lifecycle over one
// RunContext.
type Orchestrator struct {
	rc *RunContext
}

// NewOrchestrator builds an orchestrator, filling RunContext defaults
// (epoch now, fresh telemetry sinks) where unset.
func NewOrchestrator(rc *RunContext) *Orchestrator {
	if rc == nil {
		rc = &RunContext{}
	}
	if rc.Epoch.IsZero() {
		rc.Epoch = time.Now()
	}
	if rc.Timeline == nil {
		rc.Timeline = trace.NewTimeline()
	}
	if rc.Spans == nil {
		rc.Spans = trace.NewSpans()
	}
	return &Orchestrator{rc: rc}
}

// Context returns the orchestrator's run context.
func (o *Orchestrator) Context() *RunContext { return o.rc }

// Execute drives the stages through setup → run → drain → close and
// returns the join of every error observed (nil on a clean run).
func (o *Orchestrator) Execute(ctx context.Context, stages ...Stage) error {
	var errs []error
	fail := func(st Stage, phase string, err error) {
		errs = append(errs, fmt.Errorf("stage %s: %s: %w", st.Name(), phase, err))
		o.rc.failures(st.Name()).Inc()
		o.rc.Health.Fail(st.Name())
	}

	for _, dir := range o.rc.Dirs {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	// Register every stage's series and health entry up front so the
	// full catalogue is visible on /metrics before any work happens.
	for _, st := range stages {
		o.rc.instrument(st.Name())
	}

	// Setup phase: arm in listed order. The close phase below unwinds
	// every stage whose Setup was attempted — including one that failed
	// partway, so a half-built service still releases what it allocated.
	armed, ok := 0, true
	for _, st := range stages {
		armed++
		if s, isSetup := st.(Setupper); isSetup {
			if err := s.Setup(ctx, o.rc); err != nil {
				fail(st, "setup", err)
				ok = false
				break
			}
		}
	}

	// Run phase: each stage takes its synchronous turn. The span for a
	// stage covers its Run, extended through its Drain if it drains.
	drainable := stages[:0:0]
	if ok {
		for _, st := range stages {
			if err := ctx.Err(); err != nil {
				ok = false
				break
			}
			o.rc.Health.SetState(st.Name(), metrics.StateRunning)
			span := o.rc.Spans.Begin(st.Name(), o.rc.Since())
			err := st.Run(ctx, o.rc)
			span.End(o.rc.Since())
			_, drains := st.(Drainer)
			if drains {
				drainable = append(drainable, st)
			}
			if err != nil {
				fail(st, "run", err)
				ok = false
				break
			}
			// The latency histogram mirrors the stage's final span: a
			// draining stage's span is extended below, so its sample
			// waits until drain completes.
			if !drains {
				o.rc.seconds(st.Name()).Observe(o.rc.Since() - span.Start())
				o.rc.Health.Done(st.Name())
			}
		}
	}

	// Drain phase: graceful retirement, only after a fully clean run
	// phase (the close phase handles teardown on error paths).
	if ok {
		for _, st := range drainable {
			sp, _ := o.rc.Spans.Get(st.Name())
			err := st.(Drainer).Drain(ctx, o.rc)
			o.rc.Spans.Add(st.Name(), sp.Start, o.rc.Since())
			if err != nil {
				fail(st, "drain", err)
				break
			}
			o.rc.seconds(st.Name()).Observe(o.rc.Since() - sp.Start)
			o.rc.Health.Done(st.Name())
		}
	}

	// Close phase: reverse order, every armed stage, every exit path.
	for i := armed - 1; i >= 0; i-- {
		if c, ok := stages[i].(Closer); ok {
			if err := c.Close(); err != nil {
				fail(stages[i], "close", err)
			}
		}
	}

	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
