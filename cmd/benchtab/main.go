// Command benchtab regenerates the paper's tables and figures on the
// calibrated discrete-event simulator:
//
//	benchtab fig3       download speed vs product size (3 vs 6 workers)
//	benchtab fig4       strong scaling (workers, nodes)
//	benchtab fig5       weak scaling (workers, nodes)
//	benchtab table1     tile throughput table
//	benchtab fig6       dynamic worker-allocation timeline
//	benchtab fig7       latency breakdown
//	benchtab headline   12,000 tiles / 80 workers / 10 nodes
//	benchtab ablations  design-choice ablations
//	benchtab all        everything above
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/eoml/eoml"
)

func main() {
	if len(os.Args) != 2 {
		usage()
	}
	run(os.Args[1])
}

func run(what string) {
	switch what {
	case "fig3":
		fmt.Print(eoml.ReproduceFig3())
	case "fig4":
		fmt.Print(eoml.ReproduceFig4())
	case "fig5":
		fmt.Print(eoml.ReproduceFig5())
	case "table1":
		fmt.Print(eoml.ReproduceTable1())
	case "fig6":
		out, err := eoml.ReproduceFig6()
		if err != nil {
			log.Fatalf("benchtab: %v", err)
		}
		fmt.Print(out)
	case "fig7":
		out, err := eoml.ReproduceFig7()
		if err != nil {
			log.Fatalf("benchtab: %v", err)
		}
		fmt.Print(out)
	case "headline":
		fmt.Print(eoml.ReproduceHeadline())
	case "ablations":
		out, err := eoml.ReproduceAblations()
		if err != nil {
			log.Fatalf("benchtab: %v", err)
		}
		fmt.Print(out)
	case "all":
		for _, w := range []string{"fig3", "fig4", "fig5", "table1", "fig6", "fig7", "headline", "ablations"} {
			fmt.Printf("==== %s ====\n", w)
			run(w)
			fmt.Println()
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchtab fig3|fig4|fig5|table1|fig6|fig7|headline|ablations|all")
	os.Exit(2)
}
