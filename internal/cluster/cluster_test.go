package cluster

import (
	"math"
	"testing"

	"github.com/eoml/eoml/internal/sim"
)

func newMachine(t *testing.T, nodes int) (*sim.Kernel, *Machine) {
	t.Helper()
	k := sim.NewKernel()
	spec := Defiant()
	spec.Nodes = nodes
	m, err := New(k, spec)
	if err != nil {
		t.Fatal(err)
	}
	return k, m
}

// throughput measures steady-state tiles/sec with the given workers on
// the given number of nodes (workers spread round-robin).
func throughput(t *testing.T, nodes, workers int, horizon sim.Time) float64 {
	t.Helper()
	k, m := newMachine(t, nodes)
	cost := DefaultTileCost()
	completed := 0
	for w := 0; w < workers; w++ {
		node, err := m.Node(w % nodes)
		if err != nil {
			t.Fatal(err)
		}
		worker := &Worker{Node: node, Cost: cost}
		worker.SetSharedFS(m.SharedFS)
		infinite := func() (int, bool) { return 1, true }
		var count func(int)
		count = func(int) {
			completed++
			if k.Now() >= horizon {
				// Stop feeding: replace queue end by finishing.
			}
		}
		// One-file-at-a-time infinite queue; RunQueue recurses internally.
		worker.RunQueue(func() (int, bool) {
			if k.Now() >= horizon {
				return 0, false
			}
			return infinite()
		}, count, nil)
	}
	k.RunUntil(horizon)
	return float64(completed) / float64(horizon)
}

func TestSingleWorkerRateMatchesCalibration(t *testing.T) {
	r1 := throughput(t, 1, 1, 400)
	// Calibrated: 1/(0.0692 + 1/38.5 + 0.05/BigFS) ≈ 10.5 tiles/s.
	if r1 < 9.5 || r1 > 11.5 {
		t.Fatalf("single-worker rate %.2f, want ≈10.5", r1)
	}
}

func TestOnNodeWorkerScalingSaturates(t *testing.T) {
	r1 := throughput(t, 1, 1, 300)
	r8 := throughput(t, 1, 8, 300)
	r32 := throughput(t, 1, 32, 300)
	r64 := throughput(t, 1, 64, 300)
	if !(r8 > 2.4*r1) {
		t.Errorf("8 workers did not scale: r1=%.1f r8=%.1f", r1, r8)
	}
	// Plateau: 32→64 workers must gain little.
	if r64 > r32*1.15 {
		t.Errorf("no on-node saturation: r32=%.1f r64=%.1f", r32, r64)
	}
	if r64 > 40 {
		t.Errorf("node ceiling exceeded: %.1f tiles/s", r64)
	}
}

func TestNodeScalingNearLinear(t *testing.T) {
	// 8 workers per node, 1 vs 10 nodes: within 15% of 10×.
	r1 := throughput(t, 1, 8, 300)
	r10 := throughput(t, 10, 80, 300)
	ratio := r10 / r1
	if ratio < 8.5 || ratio > 10.5 {
		t.Fatalf("node scaling ratio %.2f (r1=%.1f r10=%.1f), want ≈10", ratio, r1, r10)
	}
}

func TestHeadlineRate(t *testing.T) {
	// 80 workers over 10 nodes must process 12,000 tiles in roughly 44
	// virtual seconds (the paper's headline): allow 30–60 s.
	k, m := newMachine(t, 10)
	cost := DefaultTileCost()
	const total = 12000
	remaining := total
	done := 0
	var finish sim.Time
	for w := 0; w < 80; w++ {
		node, _ := m.Node(w % 10)
		worker := &Worker{Node: node, Cost: cost}
		worker.SetSharedFS(m.SharedFS)
		worker.RunQueue(func() (int, bool) {
			if remaining == 0 {
				return 0, false
			}
			remaining--
			return 1, true
		}, func(int) {
			done++
			if done == total {
				finish = k.Now()
			}
		}, nil)
	}
	k.Run()
	if done != total {
		t.Fatalf("completed %d tiles", done)
	}
	if finish < 30 || finish > 60 {
		t.Fatalf("12000 tiles took %.1f virtual seconds, want ≈44", float64(finish))
	}
}

func TestWorkerProcessesFilesSequentially(t *testing.T) {
	k, m := newMachine(t, 1)
	node, _ := m.Node(0)
	w := &Worker{Node: node, Cost: DefaultTileCost()}
	w.SetSharedFS(m.SharedFS)
	files := []int{3, 5, 2}
	idx := 0
	var doneTiles []int
	idle := false
	w.RunQueue(func() (int, bool) {
		if idx >= len(files) {
			return 0, false
		}
		n := files[idx]
		idx++
		return n, true
	}, func(tiles int) {
		doneTiles = append(doneTiles, tiles)
	}, func() { idle = true })
	k.Run()
	if len(doneTiles) != 3 || doneTiles[0] != 3 || doneTiles[2] != 2 {
		t.Fatalf("files done: %v", doneTiles)
	}
	if !idle {
		t.Fatal("worker never reported idle")
	}
	// Total time ≈ 10 tiles at ~10.5 tiles/s ≈ 0.95s.
	if got := float64(k.Now()); math.Abs(got-10.0/10.5) > 0.3 {
		t.Fatalf("elapsed %.3f", got)
	}
}

func TestJitterChangesPerRunButSeedReproduces(t *testing.T) {
	run := func(seed int64) float64 {
		k, m := newMachine(t, 1)
		node, _ := m.Node(0)
		w := &Worker{Node: node, Cost: DefaultTileCost(), RNG: sim.NewRNG(seed), JitterSigma: 0.3}
		w.SetSharedFS(m.SharedFS)
		count := 10
		w.RunQueue(func() (int, bool) {
			if count == 0 {
				return 0, false
			}
			count--
			return 4, true
		}, nil, nil)
		return float64(k.Run())
	}
	a1, a2, b := run(1), run(1), run(2)
	if a1 != a2 {
		t.Fatalf("same seed diverged: %v vs %v", a1, a2)
	}
	if a1 == b {
		t.Fatalf("different seeds identical: %v", a1)
	}
}

func TestSpecValidation(t *testing.T) {
	k := sim.NewKernel()
	bad := []Spec{
		{Nodes: 0, CoresPerNode: 1, NodeIOCapacity: 1, SharedFSCapacity: 1},
		{Nodes: 1, CoresPerNode: 0, NodeIOCapacity: 1, SharedFSCapacity: 1},
		{Nodes: 1, CoresPerNode: 1, NodeIOCapacity: 0, SharedFSCapacity: 1},
		{Nodes: 1, CoresPerNode: 1, NodeIOCapacity: 1, SharedFSCapacity: 0},
	}
	for i, spec := range bad {
		if _, err := New(k, spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
	m, err := New(k, Defiant())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 36 {
		t.Fatalf("defiant nodes = %d", m.NumNodes())
	}
	if _, err := m.Node(36); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := m.Node(-1); err == nil {
		t.Error("negative node accepted")
	}
}
