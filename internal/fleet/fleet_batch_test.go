package fleet

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/metrics"
)

// batchTransport is a test double implementing BatchTransport: Run
// handles single leases (steals), RunBatch handles batched dispatch.
type batchTransport struct {
	run      func(ctx context.Context, url, fn string, args map[string]any) (any, error)
	runBatch func(ctx context.Context, url string, specs []TaskSpec) ([]TaskResult, error)
}

func (b *batchTransport) Run(ctx context.Context, url, fn string, args map[string]any) (any, error) {
	return b.run(ctx, url, fn, args)
}

func (b *batchTransport) RunBatch(ctx context.Context, url string, specs []TaskSpec) ([]TaskResult, error) {
	return b.runBatch(ctx, url, specs)
}

func TestBatchedDispatchCollapsesRoundTrips(t *testing.T) {
	var (
		mu    sync.Mutex
		calls [][]TaskSpec
	)
	tr := &batchTransport{
		run: func(_ context.Context, _, fn string, args map[string]any) (any, error) {
			return args["n"], nil
		},
		runBatch: func(_ context.Context, _ string, specs []TaskSpec) ([]TaskResult, error) {
			mu.Lock()
			calls = append(calls, specs)
			mu.Unlock()
			out := make([]TaskResult, len(specs))
			for i, s := range specs {
				out[i] = TaskResult{Result: s.Args["n"]}
			}
			return out, nil
		},
	}
	clock := newFakeClock()
	c := NewCoordinator(Config{Transport: tr, Clock: clock.Now, LeaseBatch: 8})
	defer c.Close()
	reg := metrics.NewRegistry()
	c.Instrument(reg)

	// Submit with no workers so everything queues, then register one
	// worker with room for the whole backlog: dispatch should lease all
	// eight tasks in one transport round-trip.
	futs := make([]*Future, 8)
	for i := range futs {
		f, err := c.Submit(context.Background(), "echo", map[string]any{"n": i})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	if err := c.Register("w1", "http://w1", 8); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		v, err := f.Get(context.Background())
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		if v.(int) != i {
			t.Fatalf("task %d returned %v", i, v)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 || len(calls[0]) != 8 {
		sizes := make([]int, len(calls))
		for i, b := range calls {
			sizes[i] = len(b)
		}
		t.Fatalf("batch round-trips %v, want one batch of 8", sizes)
	}
	// Both batch-size histograms observed the batch.
	for _, name := range []string{"eoml_fleet_lease_batch_size", "eoml_fleet_result_batch_size"} {
		found := false
		for _, fam := range reg.Snapshot() {
			if fam.Name != name {
				continue
			}
			found = true
			if n := fam.Series[0].Histogram.Count; n != 1 {
				t.Fatalf("%s count = %d, want 1", name, n)
			}
		}
		if !found {
			t.Fatalf("histogram %s not registered", name)
		}
	}
}

func TestBatchedDispatchBoundedByFreeCapacity(t *testing.T) {
	var (
		mu    sync.Mutex
		sizes []int
	)
	tr := &batchTransport{
		run: func(_ context.Context, _, _ string, args map[string]any) (any, error) { return "ok", nil },
		runBatch: func(_ context.Context, _ string, specs []TaskSpec) ([]TaskResult, error) {
			mu.Lock()
			sizes = append(sizes, len(specs))
			mu.Unlock()
			out := make([]TaskResult, len(specs))
			for i := range out {
				out[i] = TaskResult{Result: "ok"}
			}
			return out, nil
		},
	}
	clock := newFakeClock()
	c := NewCoordinator(Config{Transport: tr, Clock: clock.Now, LeaseBatch: 8})
	defer c.Close()
	futs := make([]*Future, 6)
	for i := range futs {
		f, err := c.Submit(context.Background(), "echo", nil)
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	// Capacity 3 < LeaseBatch 8: the first dispatch must lease only 3.
	if err := c.Register("w1", "http://w1", 3); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if _, err := f.Get(context.Background()); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, n := range sizes {
		if n > 3 {
			t.Fatalf("batch of %d exceeds worker capacity 3 (sizes %v)", n, sizes)
		}
	}
}

func TestBatchMixedOutcomes(t *testing.T) {
	tr := &batchTransport{
		run: func(_ context.Context, _, _ string, args map[string]any) (any, error) { return "ok", nil },
		runBatch: func(_ context.Context, _ string, specs []TaskSpec) ([]TaskResult, error) {
			out := make([]TaskResult, len(specs))
			for i, s := range specs {
				if s.Args["boom"] == true {
					out[i] = TaskResult{Err: &TaskError{Msg: "kernel exploded"}}
					continue
				}
				out[i] = TaskResult{Result: "ok"}
			}
			return out, nil
		},
	}
	clock := newFakeClock()
	c := NewCoordinator(Config{Transport: tr, Clock: clock.Now, LeaseBatch: 4})
	defer c.Close()
	good1, _ := c.Submit(context.Background(), "t", map[string]any{"boom": false})
	bad, _ := c.Submit(context.Background(), "t", map[string]any{"boom": true})
	good2, _ := c.Submit(context.Background(), "t", map[string]any{"boom": false})
	if err := c.Register("w1", "http://w1", 4); err != nil {
		t.Fatal(err)
	}
	if v, err := good1.Get(context.Background()); err != nil || v != "ok" {
		t.Fatalf("good1 = %v, %v", v, err)
	}
	if _, err := bad.Get(context.Background()); err == nil {
		t.Fatal("bad task succeeded")
	}
	if v, err := good2.Get(context.Background()); err != nil || v != "ok" {
		t.Fatalf("good2 = %v, %v", v, err)
	}
}

func TestBatchTransportFailureRequeuesAllAndEvicts(t *testing.T) {
	var mu sync.Mutex
	done := map[string]int{}
	tr := &batchTransport{
		run: func(_ context.Context, _, _ string, args map[string]any) (any, error) { return "ok", nil },
		runBatch: func(_ context.Context, url string, specs []TaskSpec) ([]TaskResult, error) {
			if url == "http://dead" {
				return nil, fmt.Errorf("connection refused")
			}
			out := make([]TaskResult, len(specs))
			for i, s := range specs {
				mu.Lock()
				done[s.Args["id"].(string)]++
				mu.Unlock()
				out[i] = TaskResult{Result: "ok"}
			}
			return out, nil
		},
	}
	clock := newFakeClock()
	c := NewCoordinator(Config{Transport: tr, Clock: clock.Now, LeaseBatch: 4, MaxAttempts: 3})
	defer c.Close()
	futs := make([]*Future, 4)
	for i := range futs {
		f, err := c.Submit(context.Background(), "t", map[string]any{"id": fmt.Sprintf("task-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	// The dead worker takes the whole batch and fails it; the coordinator
	// must requeue all four leases and evict it. Registering a live
	// worker then drains the queue.
	if err := c.Register("dead", "http://dead", 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("live", "http://live", 4); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if _, err := f.Get(context.Background()); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	if got := c.requeued.Load(); got < 4 {
		t.Fatalf("requeued %d leases, want >= 4", got)
	}
	if got := c.evicted.Load(); got != 1 {
		t.Fatalf("evicted %d workers, want 1", got)
	}
	mu.Lock()
	defer mu.Unlock()
	for id, n := range done {
		if n != 1 {
			t.Fatalf("%s executed %d times on the live worker", id, n)
		}
	}
}

// TestStolenTaskCacheHitExactlyOnce pins the satellite scenario from
// the worker's result memo: the primary lease blocks, the coordinator
// steals the task, the thief computes and memoizes, and when the
// blocked primary finally runs it lands a cache hit — the duplicate
// result must be discarded, not delivered twice, and nothing may
// recompute.
func TestStolenTaskCacheHitExactlyOnce(t *testing.T) {
	clock := newFakeClock()
	rc := NewResultCache(0)
	var computes int64
	var mu sync.Mutex
	gate := make(chan struct{})
	primaryIn := make(chan struct{})
	tr := transportFunc(func(_ context.Context, url, _ string, args map[string]any) (any, error) {
		if url == "http://w1" {
			close(primaryIn)
			<-gate // hold the primary lease so the steal fires first
		}
		if v, ok := rc.Get("granule-A"); ok {
			return v, nil
		}
		mu.Lock()
		computes++
		mu.Unlock()
		rc.Put("granule-A", 42)
		return 42, nil
	})
	c := NewCoordinator(Config{
		HeartbeatTimeout: time.Hour,
		StealAfter:       time.Millisecond,
		Transport:        tr,
		Clock:            clock.Now,
	})
	defer c.Close()
	if err := c.Register("w1", "http://w1", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("w2", "http://w2", 1); err != nil {
		t.Fatal(err)
	}
	fut, err := c.Submit(context.Background(), "preprocess", map[string]any{"g": "A"})
	if err != nil {
		t.Fatal(err)
	}
	<-primaryIn
	clock.Advance(time.Second)
	c.Sweep() // steal the stale lease onto w2

	v, err := fut.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("result = %v, want 42", v)
	}
	close(gate) // release the primary; its cache-hit duplicate must be discarded
	c.Close()

	mu.Lock()
	defer mu.Unlock()
	if computes != 1 {
		t.Fatalf("kernel computed %d times, want 1 (thief only)", computes)
	}
	hits, _, _ := rc.Stats()
	if hits != 1 {
		t.Fatalf("result cache hits = %d, want 1 (the released primary)", hits)
	}
	if got := c.completed.Load(); got != 1 {
		t.Fatalf("completed = %d, want exactly once", got)
	}
}

// TestFleetStealCacheHammer is the steal hammer with a memoizing batch
// transport: batched leases, aggressive stealing, and a shared result
// cache standing in for the workers' memo. Every task must deliver its
// own result exactly once no matter how many duplicate leases hit the
// cache.
func TestFleetStealCacheHammer(t *testing.T) {
	const tasks = 120
	rc := NewResultCache(0)
	runOne := func(args map[string]any) any {
		n := args["n"].(int)
		key := fmt.Sprintf("task-%d", n)
		if v, ok := rc.Get(key); ok {
			return v
		}
		rc.Put(key, n)
		return n
	}
	tr := &batchTransport{
		run: func(_ context.Context, _, _ string, args map[string]any) (any, error) {
			return runOne(args), nil
		},
		runBatch: func(_ context.Context, _ string, specs []TaskSpec) ([]TaskResult, error) {
			out := make([]TaskResult, len(specs))
			for i, s := range specs {
				out[i] = TaskResult{Result: runOne(s.Args)}
			}
			return out, nil
		},
	}
	c := NewCoordinator(Config{
		HeartbeatTimeout: time.Hour,
		StealAfter:       time.Nanosecond, // everything outstanding is stealable
		LeaseBatch:       8,
		Transport:        tr,
	})
	for i := 0; i < 4; i++ {
		if err := c.Register(fmt.Sprintf("w%d", i), fmt.Sprintf("http://w%d", i), 2); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	stopSweeps := make(chan struct{})
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopSweeps:
					return
				default:
					c.Sweep()
				}
			}
		}()
	}
	futs := make([]*Future, tasks)
	for i := 0; i < tasks; i++ {
		fut, err := c.Submit(ctx, "work", map[string]any{"n": i})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}
	for i, fut := range futs {
		v, err := fut.Get(ctx)
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		if v != i {
			t.Fatalf("task %d returned %v (cross-task result mixup)", i, v)
		}
	}
	close(stopSweeps)
	wg.Wait()
	c.Close()
	if got := c.completed.Load(); got != tasks {
		t.Fatalf("completed = %d, want %d (exactly once each)", got, tasks)
	}
}
