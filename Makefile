# Standard entry points for the eoml repo.
#
#   make check   — what CI runs: gofmt gate + vet + race-enabled tests
#   make bench   — the hot-path benchmarks recorded in BENCH_1.json

GO ?= go

.PHONY: build test vet race fmt bench bench-all check

build:
	$(GO) build ./...

# gofmt cleanliness gate: fails listing any file that needs formatting.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Hot-path benchmarks from this PR (kernels, arena, batching).
bench:
	$(GO) test -run xxx -bench 'BenchmarkMatMulBlocked|BenchmarkEncodeArena|BenchmarkLabelFileBatched' -benchmem -benchtime 1s .

# Every figure/table/ablation benchmark in the repo.
bench-all:
	$(GO) test -run xxx -bench . -benchmem ./...

check: fmt vet race
