// Package compute is a Globus-Compute-like (FuncX) function-serving
// fabric: named functions are registered in a registry, endpoints execute
// submitted tasks on bounded worker pools, and a remote client submits
// work over HTTP and polls futures — the same programming model the
// paper's download stage uses to fan wget tasks out to workers on the
// Defiant data-transfer nodes.
package compute

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrDraining is returned by Submit once Stop has begun draining the
// endpoint: the task was not accepted, but the endpoint is shutting
// down cleanly rather than broken. Callers that own retry policy (the
// fleet coordinator) treat a draining rejection as requeue-able —
// resubmit the task elsewhere — where any other submission failure is
// fatal for the task. Test with errors.Is.
var ErrDraining = errors.New("endpoint draining")

// Function is a registered callable. Arguments and results must be
// JSON-serializable when the function is invoked through the HTTP
// transport.
type Function func(ctx context.Context, args map[string]any) (any, error)

// Registry maps function names to callables.
type Registry struct {
	mu  sync.RWMutex
	fns map[string]Function
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fns: map[string]Function{}}
}

// Register adds a function under a unique name.
func (r *Registry) Register(name string, fn Function) error {
	if name == "" || fn == nil {
		return fmt.Errorf("compute: register needs a name and a function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fns[name]; dup {
		return fmt.Errorf("compute: function %q already registered", name)
	}
	r.fns[name] = fn
	return nil
}

// Lookup fetches a function.
func (r *Registry) Lookup(name string) (Function, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.fns[name]
	if !ok {
		return nil, fmt.Errorf("compute: no function %q", name)
	}
	return fn, nil
}

// Names lists registered functions.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.fns))
	for k := range r.fns {
		out = append(out, k)
	}
	return out
}

// TaskState is a task lifecycle state.
type TaskState string

// Task states.
const (
	Pending   TaskState = "pending"
	Running   TaskState = "running"
	Completed TaskState = "completed"
	Errored   TaskState = "errored"
)

// Future tracks one submitted task.
type Future struct {
	ID string

	mu     sync.Mutex
	state  TaskState
	result any
	err    error
	done   chan struct{}
}

func newFuture(id string) *Future {
	return &Future{ID: id, state: Pending, done: make(chan struct{})}
}

// State returns the current lifecycle state.
func (f *Future) State() TaskState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state
}

// Done returns a channel closed on completion.
func (f *Future) Done() <-chan struct{} { return f.done }

// Get blocks until the task completes or ctx is cancelled.
func (f *Future) Get(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.result, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (f *Future) setRunning() {
	f.mu.Lock()
	f.state = Running
	f.mu.Unlock()
}

func (f *Future) complete(result any, err error) {
	f.mu.Lock()
	if err != nil {
		f.state = Errored
		f.err = err
	} else {
		f.state = Completed
		f.result = result
	}
	f.mu.Unlock()
	close(f.done)
}

// EndpointConfig tunes a compute endpoint.
type EndpointConfig struct {
	// Workers is the pool size.
	Workers int
	// QueueDepth bounds pending tasks; 0 means 1024.
	QueueDepth int
	// TaskTimeout bounds each task's execution; 0 disables.
	TaskTimeout time.Duration
	// OnWorkerChange, when set, observes the active-worker count after
	// every change — the hook the Fig. 6 timeline recorder uses.
	OnWorkerChange func(active int)
	// OnEnqueue, when set, observes every accepted task right after it
	// is queued (before a pool worker picks it up). The fleet worker's
	// granule prefetcher hangs off this hook: it sees leased tasks while
	// they wait for a compute slot and fetches their inputs ahead of
	// execution. Called outside the endpoint lock; must not block.
	OnEnqueue func(function string, args map[string]any)
}

// Endpoint executes registry functions on a worker pool.
type Endpoint struct {
	ID  string
	cfg EndpointConfig
	reg *Registry

	mu      sync.Mutex
	queue   chan *queued
	futures map[string]*Future
	nextID  int
	active  int
	wg      sync.WaitGroup
	started bool
	stopped bool
}

type queued struct {
	fn  Function
	arg map[string]any
	fut *Future
}

// NewEndpoint builds an endpoint bound to a registry.
func NewEndpoint(id string, reg *Registry, cfg EndpointConfig) (*Endpoint, error) {
	if id == "" || reg == nil {
		return nil, fmt.Errorf("compute: endpoint needs an id and a registry")
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("compute: endpoint %q needs at least 1 worker", id)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	return &Endpoint{
		ID:      id,
		cfg:     cfg,
		reg:     reg,
		queue:   make(chan *queued, cfg.QueueDepth),
		futures: map[string]*Future{},
	}, nil
}

// Start launches the worker pool.
func (e *Endpoint) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	for w := 0; w < e.cfg.Workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
}

// Stop drains the queue and waits for workers to exit gracefully — the
// paper's "if no further tasks are available, the worker gracefully
// terminates".
func (e *Endpoint) Stop() {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	close(e.queue)
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *Endpoint) worker() {
	defer e.wg.Done()
	for q := range e.queue {
		e.setActive(+1)
		q.fut.setRunning()
		ctx := context.Background()
		var cancel context.CancelFunc
		if e.cfg.TaskTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, e.cfg.TaskTimeout)
		}
		result, err := runSafely(ctx, q.fn, q.arg)
		if cancel != nil {
			cancel()
		}
		q.fut.complete(result, err)
		e.setActive(-1)
	}
}

// runSafely converts panics into task errors so one bad task cannot kill
// a worker.
func runSafely(ctx context.Context, fn Function, args map[string]any) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("compute: task panicked: %v", r)
		}
	}()
	return fn(ctx, args)
}

func (e *Endpoint) setActive(delta int) {
	e.mu.Lock()
	e.active += delta
	active := e.active
	hook := e.cfg.OnWorkerChange
	e.mu.Unlock()
	if hook != nil {
		hook(active)
	}
}

// ActiveWorkers reports how many workers are executing right now.
func (e *Endpoint) ActiveWorkers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.active
}

// Submit enqueues a task for the named function and returns its future.
func (e *Endpoint) Submit(function string, args map[string]any) (*Future, error) {
	fn, err := e.reg.Lookup(function)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return nil, fmt.Errorf("compute: endpoint %q: %w", e.ID, ErrDraining)
	}
	if !e.started {
		e.mu.Unlock()
		return nil, fmt.Errorf("compute: endpoint %q is not running", e.ID)
	}
	e.nextID++
	id := fmt.Sprintf("%s-task-%06d", e.ID, e.nextID)
	fut := newFuture(id)
	e.futures[id] = fut
	// Enqueue while still holding the lock: Stop closes the queue under
	// the same lock, so the stopped check above and this non-blocking
	// send are atomic — a concurrent drain yields ErrDraining, never a
	// send on a closed channel.
	select {
	case e.queue <- &queued{fn: fn, arg: args, fut: fut}:
		e.mu.Unlock()
		if hook := e.cfg.OnEnqueue; hook != nil {
			hook(function, args)
		}
		return fut, nil
	default:
		delete(e.futures, id)
		e.mu.Unlock()
		return nil, fmt.Errorf("compute: endpoint %q queue full", e.ID)
	}
}

// Spec names one task of a batch submission.
type Spec struct {
	Function string         `json:"function"`
	Args     map[string]any `json:"args"`
}

// SubmitBatch enqueues many tasks in one call, all or nothing: every
// function is resolved and every queue slot reserved before any task is
// accepted, so a draining endpoint or a full queue rejects the whole
// batch and the caller's lease accounting stays simple. This is the
// endpoint half of the fleet's batched lease RPC — one round-trip
// carries a worker's whole lease window instead of one task.
func (e *Endpoint) SubmitBatch(specs []Spec) ([]*Future, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("compute: empty batch")
	}
	fns := make([]Function, len(specs))
	for i, s := range specs {
		fn, err := e.reg.Lookup(s.Function)
		if err != nil {
			return nil, fmt.Errorf("compute: batch task %d: %w", i, err)
		}
		fns[i] = fn
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return nil, fmt.Errorf("compute: endpoint %q: %w", e.ID, ErrDraining)
	}
	if !e.started {
		e.mu.Unlock()
		return nil, fmt.Errorf("compute: endpoint %q is not running", e.ID)
	}
	if free := cap(e.queue) - len(e.queue); free < len(specs) {
		e.mu.Unlock()
		return nil, fmt.Errorf("compute: endpoint %q queue full (%d free, batch of %d)", e.ID, free, len(specs))
	}
	futs := make([]*Future, len(specs))
	for i, s := range specs {
		e.nextID++
		id := fmt.Sprintf("%s-task-%06d", e.ID, e.nextID)
		fut := newFuture(id)
		e.futures[id] = fut
		futs[i] = fut
		// The free-capacity check above ran under the same lock Stop and
		// Submit take, so this send cannot block; the default arm only
		// guards the invariant.
		select {
		case e.queue <- &queued{fn: fns[i], arg: s.Args, fut: fut}:
		default:
			delete(e.futures, id)
			e.mu.Unlock()
			return nil, fmt.Errorf("compute: endpoint %q queue full mid-batch (task %d of %d)", e.ID, i+1, len(specs))
		}
	}
	hook := e.cfg.OnEnqueue
	e.mu.Unlock()
	if hook != nil {
		for _, s := range specs {
			hook(s.Function, s.Args)
		}
	}
	return futs, nil
}

// Future looks up a previously submitted task by ID.
func (e *Endpoint) Future(id string) (*Future, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fut, ok := e.futures[id]
	if !ok {
		return nil, fmt.Errorf("compute: no task %q", id)
	}
	return fut, nil
}

// Map submits one task per argument set and waits for all, returning
// results in order. The first error is reported, but all tasks run.
func (e *Endpoint) Map(ctx context.Context, function string, argSets []map[string]any) ([]any, error) {
	futs := make([]*Future, len(argSets))
	for i, args := range argSets {
		f, err := e.Submit(function, args)
		if err != nil {
			return nil, err
		}
		futs[i] = f
	}
	results := make([]any, len(futs))
	var firstErr error
	for i, f := range futs {
		r, err := f.Get(ctx)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("task %d: %w", i, err)
		}
		results[i] = r
	}
	return results, firstErr
}
