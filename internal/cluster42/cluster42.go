// Package cluster42 implements agglomerative hierarchical clustering and
// centroid-based label assignment — the second half of the RICC method.
//
// RICC clusters the latent representations of ~1M cloud tiles with
// agglomerative clustering and cuts the dendrogram at 42 clusters to
// define the AICCA classes; new tiles are then labeled by the nearest
// cluster centroid. This package provides Ward, average, and complete
// linkage through the Lance–Williams recurrence over a squared-Euclidean
// distance matrix, plus cluster-quality metrics used by the paper's
// "cluster evaluation" stage.
package cluster42

import (
	"fmt"
	"math"
)

// NumClasses is the AICCA class count.
const NumClasses = 42

// Linkage selects the merge criterion.
type Linkage int

// Supported linkages.
const (
	Ward Linkage = iota
	Average
	Complete
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case Ward:
		return "ward"
	case Average:
		return "average"
	case Complete:
		return "complete"
	}
	return fmt.Sprintf("linkage(%d)", int(l))
}

// Result is a flat clustering obtained by cutting the dendrogram.
type Result struct {
	// Labels assigns each input row a cluster in [0, K).
	Labels []int
	// Centroids are the cluster means, indexed by label.
	Centroids [][]float32
	// Sizes are member counts per cluster.
	Sizes []int
	// MergeHeights records the linkage distance of every merge performed,
	// in merge order — useful for dendrogram diagnostics.
	MergeHeights []float64
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Centroids) }

// Agglomerate clusters data (n rows of equal dimension) into k clusters
// with the given linkage. It is deterministic: ties break toward the
// lowest cluster index.
func Agglomerate(data [][]float32, k int, linkage Linkage) (*Result, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("cluster42: no data")
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("cluster42: k=%d for %d rows", k, n)
	}
	dim := len(data[0])
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("cluster42: row %d has dim %d, want %d", i, len(row), dim)
		}
	}

	// Pairwise squared Euclidean distances. Lance–Williams updates this
	// matrix in place as clusters merge.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := sqDist(data[i], data[j])
			dist[i][j] = d
			dist[j][i] = d
		}
	}

	active := make([]bool, n)
	size := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
	}
	// members[c] lists original rows currently in cluster c.
	members := make([][]int, n)
	for i := range members {
		members[i] = []int{i}
	}

	var heights []float64
	remaining := n
	for remaining > k {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			row := dist[i]
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if row[j] < best {
					best, bi, bj = row[j], i, j
				}
			}
		}
		// Merge bj into bi via the Lance–Williams recurrence.
		ni, nj := float64(size[bi]), float64(size[bj])
		for h := 0; h < n; h++ {
			if !active[h] || h == bi || h == bj {
				continue
			}
			dih, djh := dist[bi][h], dist[bj][h]
			var d float64
			switch linkage {
			case Ward:
				nh := float64(size[h])
				t := ni + nj + nh
				d = ((ni+nh)*dih + (nj+nh)*djh - nh*best) / t
			case Average:
				d = (ni*dih + nj*djh) / (ni + nj)
			case Complete:
				d = math.Max(dih, djh)
			}
			dist[bi][h] = d
			dist[h][bi] = d
		}
		active[bj] = false
		size[bi] += size[bj]
		members[bi] = append(members[bi], members[bj]...)
		members[bj] = nil
		heights = append(heights, best)
		remaining--
	}

	// Flatten: relabel active clusters 0..k-1 in index order.
	res := &Result{
		Labels:       make([]int, n),
		MergeHeights: heights,
	}
	for c := 0; c < n; c++ {
		if !active[c] {
			continue
		}
		label := len(res.Centroids)
		centroid := make([]float32, dim)
		for _, row := range members[c] {
			res.Labels[row] = label
			for d, v := range data[row] {
				centroid[d] += v
			}
		}
		inv := 1 / float32(len(members[c]))
		for d := range centroid {
			centroid[d] *= inv
		}
		res.Centroids = append(res.Centroids, centroid)
		res.Sizes = append(res.Sizes, len(members[c]))
	}
	return res, nil
}

// Assign labels each row by its nearest centroid (squared Euclidean).
// This is the inference-time operation: tiles are encoded by the trained
// autoencoder and assigned to the fixed AICCA centroids.
func Assign(data [][]float32, centroids [][]float32) ([]int, error) {
	if len(centroids) == 0 {
		return nil, fmt.Errorf("cluster42: no centroids")
	}
	dim := len(centroids[0])
	labels := make([]int, len(data))
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("cluster42: row %d has dim %d, want %d", i, len(row), dim)
		}
		best, bestD := 0, math.Inf(1)
		for c, cen := range centroids {
			d := sqDist(row, cen)
			if d < bestD {
				best, bestD = c, d
			}
		}
		labels[i] = best
	}
	return labels, nil
}

// WithinSSE is the total within-cluster sum of squared distances to the
// centroid — lower means tighter clusters. RICC's cluster-evaluation
// protocol compares this across linkages and latent dimensions.
func WithinSSE(data [][]float32, centroids [][]float32, labels []int) (float64, error) {
	if len(labels) != len(data) {
		return 0, fmt.Errorf("cluster42: %d labels for %d rows", len(labels), len(data))
	}
	var sse float64
	for i, row := range data {
		l := labels[i]
		if l < 0 || l >= len(centroids) {
			return 0, fmt.Errorf("cluster42: label %d out of range", l)
		}
		sse += sqDist(row, centroids[l])
	}
	return sse, nil
}

// MeanSilhouette computes the mean silhouette coefficient, the standard
// cluster-separation score in [-1, 1]. O(n²); callers subsample first for
// large n.
func MeanSilhouette(data [][]float32, labels []int, k int) (float64, error) {
	n := len(data)
	if len(labels) != n {
		return 0, fmt.Errorf("cluster42: %d labels for %d rows", len(labels), n)
	}
	counts := make([]int, k)
	for _, l := range labels {
		if l < 0 || l >= k {
			return 0, fmt.Errorf("cluster42: label %d out of range [0,%d)", l, k)
		}
		counts[l]++
	}
	var total float64
	scored := 0
	sums := make([]float64, k)
	for i := 0; i < n; i++ {
		if counts[labels[i]] < 2 {
			continue // silhouette undefined for singletons
		}
		for c := range sums {
			sums[c] = 0
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[labels[j]] += math.Sqrt(sqDist(data[i], data[j]))
		}
		a := sums[labels[i]] / float64(counts[labels[i]]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == labels[i] || counts[c] == 0 {
				continue
			}
			if v := sums[c] / float64(counts[c]); v < b {
				b = v
			}
		}
		if math.IsInf(b, 1) {
			continue // only one non-empty cluster
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
		scored++
	}
	if scored == 0 {
		return 0, nil
	}
	return total / float64(scored), nil
}

func sqDist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}
