package laads

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/hdf"
	"github.com/eoml/eoml/internal/modis"
)

func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.ScaleDown == 0 {
		cfg.ScaleDown = 64
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestListing(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	c := NewClient(ts.URL, "")
	listing, err := c.List(context.Background(), modis.MOD021KM, 2022, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(listing) != modis.GranulesPerDay {
		t.Fatalf("listing has %d entries", len(listing))
	}
	if !strings.HasPrefix(listing[0].Name, "MOD021KM.A2022001.0000.") {
		t.Fatalf("first entry %q", listing[0].Name)
	}
	if listing[0].Size != modis.NominalBytes(modis.MOD021KM) {
		t.Fatalf("advertised size %d", listing[0].Size)
	}
}

func TestDownloadProducesValidGranule(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	c := NewClient(ts.URL, "")
	dir := t.TempDir()
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: 0}
	name := modis.FileName(modis.MOD03, g)
	res, err := c.Download(context.Background(), modis.MOD03, 2022, 1, name, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes == 0 || res.Attempts != 1 {
		t.Fatalf("result %+v", res)
	}
	f, err := hdf.ReadFile(res.Path)
	if err != nil {
		t.Fatal(err)
	}
	if sn, _ := f.AttrString("ShortName"); sn != "MOD03" {
		t.Fatalf("ShortName = %q", sn)
	}
	if _, err := os.Stat(res.Path + ".part"); !os.IsNotExist(err) {
		t.Fatal("partial file left behind")
	}
}

func TestAuthRequired(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{Token: "secret"})
	bad := NewClient(ts.URL, "wrong")
	if _, err := bad.List(context.Background(), modis.MOD021KM, 2022, 1); err == nil {
		t.Fatal("bad token accepted")
	}
	good := NewClient(ts.URL, "secret")
	if _, err := good.List(context.Background(), modis.MOD021KM, 2022, 1); err != nil {
		t.Fatal(err)
	}
}

func TestNotFoundPaths(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	c := NewClient(ts.URL, "")
	ctx := context.Background()
	c.Retries = 0
	if _, err := c.Download(ctx, modis.MOD021KM, 2022, 1, "garbage.hdf", t.TempDir()); err == nil {
		t.Error("garbage name accepted")
	}
	// Wrong product/date combination for a valid name.
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 2, Index: 0}
	name := modis.FileName(modis.MOD021KM, g)
	if _, err := c.Download(ctx, modis.MOD021KM, 2022, 1, name, t.TempDir()); err == nil {
		t.Error("mismatched date accepted")
	}
}

func TestRetryOnInjectedFaults(t *testing.T) {
	// With 40% failures and 5 retries the download should still succeed.
	_, ts := newTestServer(t, ServerConfig{FailureRate: 0.4, Seed: 42})
	c := NewClient(ts.URL, "")
	c.Retries = 5
	c.Backoff = time.Millisecond
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: 5}
	name := modis.FileName(modis.MOD03, g)
	res, err := c.Download(context.Background(), modis.MOD03, 2022, 1, name, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes == 0 {
		t.Fatal("no bytes after retries")
	}
}

func TestDownloadAllWorkerPool(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	c := NewClient(ts.URL, "")
	dir := t.TempDir()
	tasks := DayTasks([]modis.Product{modis.MOD03, modis.MOD06L2}, 2022, 1, []int{0, 1, 2})
	if len(tasks) != 6 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	rep, err := c.DownloadAll(context.Background(), tasks, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Files) != 6 || rep.Failed != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.TotalBytes == 0 || rep.MeanSpeedBytesPerSec() <= 0 {
		t.Fatalf("speed accounting: %+v", rep)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("files on disk = %d", len(entries))
	}
}

func TestDownloadAllPropagatesFailures(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{FailureRate: 1.0, Seed: 1})
	c := NewClient(ts.URL, "")
	c.Retries = 1
	c.Backoff = time.Millisecond
	tasks := DayTasks([]modis.Product{modis.MOD03}, 2022, 1, []int{0, 1})
	rep, err := c.DownloadAll(context.Background(), tasks, t.TempDir(), 2)
	if err == nil {
		t.Fatal("total failure not reported")
	}
	if rep.Failed != 2 {
		t.Fatalf("failed = %d", rep.Failed)
	}
}

func TestContextCancellation(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{PerConnBytesPerSec: 1 << 10})
	c := NewClient(ts.URL, "")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: 0}
	name := modis.FileName(modis.MOD021KM, g)
	_, err := c.Download(ctx, modis.MOD021KM, 2022, 1, name, t.TempDir())
	if err == nil {
		t.Fatal("throttled download finished under a 50ms deadline")
	}
}

func TestPerConnectionThrottleShapesBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// Serve one small product with a tight per-connection cap and verify
	// wall time is at least bytes/rate.
	_, ts := newTestServer(t, ServerConfig{ScaleDown: 64, PerConnBytesPerSec: 256 << 10})
	c := NewClient(ts.URL, "")
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: 7}
	name := modis.FileName(modis.MOD021KM, g)
	res, err := c.Download(context.Background(), modis.MOD021KM, 2022, 1, name, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	minTime := time.Duration(float64(res.Bytes) / float64(256<<10) * float64(time.Second))
	if res.Duration < minTime/2 {
		t.Fatalf("download of %d bytes took %v, cap implies >= %v", res.Bytes, res.Duration, minTime)
	}
}

func TestMoreWorkersImproveThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// The Fig. 3 effect at miniature scale: with per-connection caps well
	// under the aggregate cap, 3 workers beat 1.
	_, ts := newTestServer(t, ServerConfig{
		ScaleDown:            64,
		PerConnBytesPerSec:   128 << 10,
		AggregateBytesPerSec: 8 << 20,
	})
	c := NewClient(ts.URL, "")
	tasks := DayTasks([]modis.Product{modis.MOD021KM}, 2022, 1, []int{0, 1, 2, 3, 4, 5})

	rep1, err := c.DownloadAll(context.Background(), tasks, t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rep3, err := c.DownloadAll(context.Background(), tasks, t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.MeanSpeedBytesPerSec() < rep1.MeanSpeedBytesPerSec()*1.5 {
		t.Fatalf("3 workers %.0f B/s vs 1 worker %.0f B/s: no speedup",
			rep3.MeanSpeedBytesPerSec(), rep1.MeanSpeedBytesPerSec())
	}
}

func TestRangeTasks(t *testing.T) {
	products := []modis.Product{modis.MOD021KM, modis.MOD03, modis.MOD06L2}
	tasks, err := RangeTasks(products, 2022, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 3 days × 288 granules × 3 products.
	if len(tasks) != 3*288*3 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	if tasks[0].DOY != 1 || tasks[len(tasks)-1].DOY != 3 {
		t.Fatalf("day range wrong: %d..%d", tasks[0].DOY, tasks[len(tasks)-1].DOY)
	}
	for _, bad := range [][2]int{{0, 3}, {3, 1}, {1, 400}} {
		if _, err := RangeTasks(products, 2022, bad[0], bad[1]); err == nil {
			t.Errorf("range %v accepted", bad)
		}
	}
}

func TestGranuleCacheServesIdenticalBytes(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{})
	c := NewClient(ts.URL, "")
	dir1, dir2 := t.TempDir(), t.TempDir()
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: 3}
	name := modis.FileName(modis.MOD06L2, g)
	ctx := context.Background()
	if _, err := c.Download(ctx, modis.MOD06L2, 2022, 1, name, dir1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Download(ctx, modis.MOD06L2, 2022, 1, name, dir2); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dir1, name))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir2, name))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("repeat downloads differ")
	}
	reqs, sent := srv.Stats()
	if reqs < 2 || sent != int64(2*len(a)) {
		t.Fatalf("server stats: %d reqs, %d bytes (file %d)", reqs, sent, len(a))
	}
}

func TestTokenBucketTakeRespectsContext(t *testing.T) {
	// A bucket with a tiny refill rate would block a large take for
	// minutes; cancellation must release the waiter promptly and report
	// the context error without consuming budget.
	b := newTokenBucket(1 << 10)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.take(ctx, 1<<20) }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("take returned nil after cancellation")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("take did not return after cancellation")
	}
	// An uncancelled take within budget still succeeds immediately.
	if err := b.take(context.Background(), 1); err != nil {
		t.Fatalf("small take failed: %v", err)
	}
}

func TestSleepCtx(t *testing.T) {
	if err := sleepCtx(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("uncancelled sleep: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sleepCtx(ctx, time.Hour); err == nil {
		t.Fatal("cancelled sleep returned nil")
	}
}
