package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural substrate under lockguard, ctxflow,
// and locksleep: a module-wide call graph over the type-checked
// packages, with SCC condensation so facts can be propagated bottom-up
// (callee before caller) in one deterministic pass.
//
// Resolution is static: direct calls through named functions and
// methods (calleeFunc), plus method-set resolution for calls through
// the module's small interface surface — a call to an interface method
// gets an edge to every module-declared concrete method that
// implements it. Calls through plain function values stay unresolved;
// the analyzers built on top are lint heuristics, not verifiers, and
// the repo's conventions (no function-typed registries on hot
// concurrency paths) keep that blind spot small.

// CallSite is one static call edge, positioned at the call expression.
type CallSite struct {
	Caller *FuncNode
	Callee *FuncNode
	Pos    token.Pos
	// Go marks a call that starts a goroutine — either `go f()` directly
	// or any call syntactically inside a `go func(){...}()` literal. Go
	// calls never block the caller, so blocking facts must not propagate
	// across them; they still count as reachability for context-flow.
	Go bool
	// Deferred marks `defer f()`; deferred calls run (and block) in the
	// caller's frame at return, so facts propagate across them normally.
	Deferred bool
}

// FuncNode is one function or method in the call graph. Functions
// outside the analyzed packages (stdlib callees) get a node with a nil
// Decl so edges stay representable; facts about them come only from
// call-site pattern matching.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl // nil for functions without a body in the analyzed set
	Pkg  *Package      // nil when Decl is nil
	Out  []*CallSite
	In   []*CallSite
}

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	// Nodes maps every seen *types.Func (declared or external) to its node.
	Nodes map[*types.Func]*FuncNode
	// Declared lists the nodes with bodies, in deterministic
	// (package path, source position) order.
	Declared []*FuncNode
}

// BuildCallGraph constructs the graph over the given packages.
func BuildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*FuncNode{}}
	// Pass 1: a node per declared function, and the named-type inventory
	// for interface resolution.
	var named []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if n, ok := tn.Type().(*types.Named); ok {
					named = append(named, n)
				}
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.Nodes[fn] = node
				g.Declared = append(g.Declared, node)
			}
		}
	}
	sort.Slice(g.Declared, func(i, j int) bool {
		a, b := g.Declared[i], g.Declared[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})

	// Pass 2: edges. Calls inside `go func(){...}()` literals belong to
	// the enclosing declaration but are marked Go (they run concurrently,
	// not in the caller's frame).
	for _, node := range g.Declared {
		caller := node
		inspectStack(wrapDecl(caller.Decl), func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			isGo, isDefer := callContext(call, stack)
			fn := calleeFunc(caller.Pkg.Info, call)
			if fn == nil {
				return
			}
			for _, callee := range g.resolve(fn, named) {
				site := &CallSite{Caller: caller, Callee: callee, Pos: call.Pos(), Go: isGo, Deferred: isDefer}
				caller.Out = append(caller.Out, site)
				callee.In = append(callee.In, site)
			}
		})
	}
	return g
}

// wrapDecl adapts a FuncDecl for inspectStack, which takes *ast.File.
// A one-decl synthetic file keeps the traversal helper shared.
func wrapDecl(fd *ast.FuncDecl) *ast.File {
	return &ast.File{Name: ast.NewIdent("_"), Decls: []ast.Decl{fd}}
}

// callContext classifies a call's execution context from its ancestor
// stack: started as a goroutine (directly or via an enclosing
// go-literal), deferred, or a plain call.
func callContext(call *ast.CallExpr, stack []ast.Node) (isGo, isDefer bool) {
	if len(stack) > 0 {
		switch parent := stack[len(stack)-1].(type) {
		case *ast.GoStmt:
			if parent.Call == call {
				return true, false
			}
		case *ast.DeferStmt:
			if parent.Call == call {
				isDefer = true
			}
		}
	}
	// Inside the body of a literal that a go statement invokes?
	for i := 0; i+2 < len(stack)+1 && i < len(stack); i++ {
		g, ok := stack[i].(*ast.GoStmt)
		if !ok {
			continue
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			if call.Pos() >= lit.Body.Pos() && call.End() <= lit.Body.End() {
				return true, isDefer
			}
		}
	}
	return false, isDefer
}

// resolve expands one static callee into graph nodes: the function
// itself, plus — when it is an interface method — every module-declared
// concrete method implementing it.
func (g *CallGraph) resolve(fn *types.Func, named []*types.Named) []*FuncNode {
	out := []*FuncNode{g.node(fn)}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return out
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return out
	}
	for _, n := range named {
		if types.IsInterface(n) {
			continue
		}
		var impl types.Type = n
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(n)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, fn.Pkg(), fn.Name())
		if m, ok := obj.(*types.Func); ok {
			if node := g.Nodes[m]; node != nil && node.Decl != nil {
				out = append(out, node)
			}
		}
	}
	return out
}

// node finds or creates the (possibly external) node for fn.
func (g *CallGraph) node(fn *types.Func) *FuncNode {
	if n, ok := g.Nodes[fn]; ok {
		return n
	}
	n := &FuncNode{Fn: fn}
	g.Nodes[fn] = n
	return n
}

// BottomUpSCCs returns the strongly connected components of the
// declared subgraph in bottom-up order: every component appears after
// all components it calls into (go edges excluded — a goroutine launch
// is not a frame on the caller's stack). Facts computed left to right
// therefore see final callee facts, with each SCC handled as one unit
// for mutual recursion.
func (g *CallGraph) BottomUpSCCs() [][]*FuncNode {
	// Tarjan's algorithm; its natural emission order (a component is
	// finished only after everything it reaches) is exactly bottom-up.
	index := map[*FuncNode]int{}
	low := map[*FuncNode]int{}
	onStack := map[*FuncNode]bool{}
	var stack []*FuncNode
	var sccs [][]*FuncNode
	next := 0

	var strong func(v *FuncNode)
	strong = func(v *FuncNode) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, site := range v.Out {
			w := site.Callee
			if site.Go || w.Decl == nil {
				continue
			}
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*FuncNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range g.Declared {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return sccs
}
