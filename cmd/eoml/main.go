// Command eoml runs the five-stage EO-ML workflow from a YAML
// declaration, in the spirit of the paper's user-facing configuration:
//
//	eoml -init -config workflow.yaml            # write a sample declaration
//	eoml -config workflow.yaml -train           # offline stages + batch run
//	eoml -config workflow.yaml                  # batch run with saved model
//	eoml -config workflow.yaml -stream          # streaming run
//	eoml -config workflow.yaml -metrics-addr localhost:9090
//	eoml serve -addr localhost:8080             # multi-run control plane
//
// The serve subcommand turns the tool into a long-lived workflow
// control plane: one engine, many runs. Clients POST a YAML config to
// /api/v1/runs and get back a run ID; runs execute concurrently
// (bounded by -max-runs), can be listed (GET /api/v1/runs), inspected
// (GET /api/v1/runs/{id}), canceled (DELETE /api/v1/runs/{id}), and
// scraped individually (GET /api/v1/runs/{id}/metrics), while /metrics
// and /healthz aggregate across every retained run. -quota-rps shapes
// each tenant's aggregate archive request rate across all its runs.
//
// With -train, the tool first performs the offline stages (download
// training granules, fit the RICC autoencoder, cluster the AICCA
// codebook) and saves the artifacts to the paths named under `model:` in
// the config; otherwise it loads them from those paths.
//
// With -metrics-addr (or the metrics_addr config key), the tool serves
// live observability endpoints for the lifetime of the run: /metrics
// (Prometheus text exposition; append ?format=json for JSON) and
// /healthz (200 while every stage is live, 503 once a stage stalls or
// fails). See docs/OPERATIONS.md for the metric catalogue.
//
// With -pprof-addr, the tool additionally serves the Go runtime
// profiles under /debug/pprof/ (CPU, heap, goroutine, block, mutex,
// trace); give it the same address as -metrics-addr to share one
// listener. See the Profiling section of docs/OPERATIONS.md.
//
// Other flags: -timeline prints the worker-activity timeline,
// -stream-gap-ms sets the streaming inter-arrival gap, -provenance
// exports the run's provenance graph, -train-classes and -train-epochs
// tune training.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"time"

	"github.com/eoml/eoml"
)

// attachPprof mounts the runtime profile handlers (CPU, heap, goroutine,
// block, mutex, trace) under /debug/pprof/ on mux.
func attachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// muxSet composes HTTP roles (run API, metrics, pprof) onto listener
// addresses, binding each distinct address exactly once. Asking for the
// mux of an address twice returns the same mux, so two flags naming the
// same address share one listener instead of the second bind failing
// with "address already in use" — the composition rule every
// addr-taking flag of this command follows.
type muxSet struct {
	muxes map[string]*http.ServeMux
	order []string
	stops []func()
}

func newMuxSet() *muxSet {
	return &muxSet{muxes: map[string]*http.ServeMux{}}
}

// mux finds or creates the mux bound to addr.
func (m *muxSet) mux(addr string) *http.ServeMux {
	if mx, ok := m.muxes[addr]; ok {
		return mx
	}
	mx := http.NewServeMux()
	m.muxes[addr] = mx
	m.order = append(m.order, addr)
	return mx
}

// start binds every address and serves its mux, returning the bound
// address per requested address. On any bind failure the already-bound
// listeners are closed and the error returned.
func (m *muxSet) start() (map[string]net.Addr, error) {
	bound := map[string]net.Addr{}
	for _, addr := range m.order {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			m.stop()
			return nil, err
		}
		srv := &http.Server{Handler: m.muxes[addr]}
		served := make(chan struct{})
		go func() {
			defer close(served)
			_ = srv.Serve(ln) // returns once stop calls Close
		}()
		m.stops = append(m.stops, func() {
			_ = srv.Close()
			<-served
		})
		bound[addr] = ln.Addr()
	}
	return bound, nil
}

// stop closes every listener and joins the serve goroutines.
func (m *muxSet) stop() {
	for _, s := range m.stops {
		s()
	}
	m.stops = nil
}

// sampleConfig is the declaration written by -init, mirroring the YAML
// interface the paper describes for its users.
const sampleConfig = `# EO-ML workflow declaration
satellite: Terra
year: 2022
doy: 1
granules: [0, 1, 2]   # five-minute slots; omit for the whole day

archive:
  url: http://localhost:8900
  token: demo

paths:
  data: /tmp/eoml/data      # downloaded MODIS granules
  tiles: /tmp/eoml/tiles    # preprocessed ocean-cloud tiles (NetCDF)
  outbox: /tmp/eoml/outbox  # labeled files staged for shipment
  dest: /tmp/eoml/orion     # destination filesystem

workers:
  download: 3
  preprocess: 8
  inference: 1

tile:
  pixels: 8                # 128 / archive scale (laads-server -scale 16)
  min_cloud_fraction: 0.3

poll_interval_ms: 50      # monitor crawl period
stall_timeout_ms: 300000  # abort if inference makes no progress this long

batch:
  tiles: 256              # flush a coalesced encode batch at this many tiles
  delay_ms: 20            # ... or this long after its first tile

precision: float32        # encode arithmetic: float32 (oracle) or int8 (quantized, faster)

distribution: local       # local (in-process) or fleet (leased to eoml-worker processes)

model:
  weights: /tmp/eoml/ricc.hdf
  codebook: /tmp/eoml/aicca-codebook.hdf

# metrics_addr: localhost:9090  # serve /metrics and /healthz during the run
`

// runServe is the `eoml serve` subcommand: a long-lived control plane
// hosting many concurrent runs over one engine.
func runServe(args []string) {
	fs := flag.NewFlagSet("eoml serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "run API listener (/api/v1/runs, /metrics, /healthz)")
	maxRuns := fs.Int("max-runs", 2, "runs executing concurrently; further submissions queue")
	retainRuns := fs.Int("retain-runs", 16, "finished runs kept inspectable before eviction")
	quotaRPS := fs.Float64("quota-rps", 0, "per-tenant archive requests per second across all of a tenant's runs (0 = unlimited)")
	quotaBurst := fs.Int("quota-burst", 8, "archive requests a tenant may burst before the rate applies")
	pprofAddr := fs.String("pprof-addr", "", "serve /debug/pprof on this address; give it the -addr value to share that listener")
	fleetOn := fs.Bool("fleet", false, "host a worker-fleet coordinator (/fleet/ membership API) so runs may declare `distribution: fleet`")
	_ = fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := eoml.EngineOptions{Quotas: eoml.NewQuotaPool(*quotaRPS, *quotaBurst)}
	if *fleetOn {
		coord := eoml.NewFleetCoordinator(eoml.FleetConfig{})
		coord.Start(ctx)
		defer coord.Close()
		opts.Fleet = coord
	}
	eng := eoml.NewEngine(opts)
	cp := eoml.NewControlPlane(eng, eoml.ControlPlaneOptions{
		MaxConcurrentRuns: *maxRuns,
		RetainRuns:        *retainRuns,
	})

	ms := newMuxSet()
	ms.mux(*addr).Handle("/", cp)
	if *pprofAddr != "" {
		// Same address as -addr → same mux, one listener; different
		// address → its own listener. Never a double bind.
		attachPprof(ms.mux(*pprofAddr))
	}
	bound, err := ms.start()
	if err != nil {
		log.Fatalf("eoml: serve: %v", err)
	}
	defer ms.stop()
	fmt.Printf("eoml: run API on http://%s (POST /api/v1/runs; %d concurrent)\n", bound[*addr], *maxRuns)
	if *fleetOn {
		fmt.Printf("eoml: fleet membership on http://%s/fleet/ (start workers with `eoml-worker -coordinator http://%s`)\n", bound[*addr], bound[*addr])
	}
	if *pprofAddr != "" {
		fmt.Printf("eoml: /debug/pprof on http://%s\n", bound[*pprofAddr])
	}

	<-ctx.Done()
	fmt.Println("eoml: shutting down")
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	configPath := flag.String("config", "workflow.yaml", "YAML workflow declaration")
	train := flag.Bool("train", false, "train the model and codebook before running")
	trainClasses := flag.Int("train-classes", 8, "AICCA codebook size when training")
	trainEpochs := flag.Int("train-epochs", 4, "autoencoder epochs when training")
	timeline := flag.Bool("timeline", false, "print the worker-activity timeline after the run")
	stream := flag.Bool("stream", false, "process granules as a stream instead of a batch")
	streamGapMS := flag.Int("stream-gap-ms", 100, "inter-arrival gap in streaming mode")
	provPath := flag.String("provenance", "", "write the run's provenance graph (JSON) to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address for the run (overrides metrics_addr in the config)")
	pprofAddr := flag.String("pprof-addr", "", "serve /debug/pprof on this address for the run; when it matches the metrics address the two share one listener")
	initConfig := flag.Bool("init", false, "write a sample workflow declaration to -config and exit")
	flag.Parse()

	if *initConfig {
		if _, err := os.Stat(*configPath); err == nil {
			log.Fatalf("eoml: %s already exists; refusing to overwrite", *configPath)
		}
		if err := os.WriteFile(*configPath, []byte(sampleConfig), 0o644); err != nil {
			log.Fatalf("eoml: %v", err)
		}
		fmt.Printf("eoml: wrote sample workflow to %s\n", *configPath)
		fmt.Println("eoml: start an archive with `laads-server -addr :8900 -token demo`, then run `eoml -config", *configPath, "-train`")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg, err := eoml.LoadConfigFile(*configPath)
	if err != nil {
		log.Fatalf("eoml: %v", err)
	}

	var labeler *eoml.Labeler
	if *train {
		fmt.Println("eoml: training RICC model and AICCA codebook…")
		labeler, err = eoml.TrainFromArchive(ctx, *cfg, eoml.TrainOptions{
			Classes: *trainClasses,
			Epochs:  *trainEpochs,
		})
		if err != nil {
			log.Fatalf("eoml: training: %v", err)
		}
		if cfg.ModelPath != "" && cfg.CodebookPath != "" {
			if err := eoml.SaveLabeler(labeler, cfg.ModelPath, cfg.CodebookPath); err != nil {
				log.Fatalf("eoml: saving model: %v", err)
			}
			fmt.Printf("eoml: saved %s and %s\n", cfg.ModelPath, cfg.CodebookPath)
		}
	}

	pipe, err := eoml.NewPipeline(*cfg, labeler)
	if err != nil {
		log.Fatalf("eoml: %v", err)
	}
	var prov *eoml.ProvenanceStore
	if *provPath != "" {
		prov = eoml.NewProvenanceStore()
		pipe.SetProvenance(prov)
	}

	obsAddr := *metricsAddr
	if obsAddr == "" {
		obsAddr = cfg.MetricsAddr
	}
	ms := newMuxSet()
	if obsAddr != "" {
		mux := ms.mux(obsAddr)
		mux.Handle("/metrics", pipe.Metrics())
		mux.Handle("/healthz", pipe.Health())
	}
	if *pprofAddr != "" {
		// Matching obsAddr reuses its mux (one listener, all roles);
		// otherwise pprof gets its own — muxSet makes double-binding
		// one address structurally impossible.
		attachPprof(ms.mux(*pprofAddr))
	}
	if len(ms.order) > 0 {
		bound, err := ms.start()
		if err != nil {
			log.Fatalf("eoml: observability listener: %v", err)
		}
		defer ms.stop()
		if obsAddr != "" {
			what := "/metrics and /healthz"
			if *pprofAddr == obsAddr {
				what = "/metrics, /healthz and /debug/pprof"
			}
			fmt.Printf("eoml: serving %s on http://%s\n", what, bound[obsAddr])
		}
		if *pprofAddr != "" && *pprofAddr != obsAddr {
			fmt.Printf("eoml: serving /debug/pprof on http://%s\n", bound[*pprofAddr])
		}
	}

	var rep *eoml.Report
	if *stream {
		fmt.Printf("eoml: streaming %d granules…\n", len(cfg.GranuleIDs()))
		arrivals := make(chan int)
		go func() {
			defer close(arrivals)
			for _, g := range cfg.GranuleIDs() {
				select {
				case arrivals <- g.Index:
				case <-ctx.Done():
					return
				}
				time.Sleep(time.Duration(*streamGapMS) * time.Millisecond)
			}
		}()
		rep, err = pipe.RunStream(ctx, arrivals)
	} else {
		fmt.Printf("eoml: running workflow for %d granules…\n", len(cfg.GranuleIDs()))
		rep, err = pipe.Run(ctx)
	}
	if err != nil {
		log.Fatalf("eoml: %v", err)
	}
	if prov != nil {
		out, err := os.Create(*provPath)
		if err != nil {
			log.Fatalf("eoml: %v", err)
		}
		if err := prov.Export(out); err != nil {
			log.Fatalf("eoml: provenance export: %v", err)
		}
		if err := out.Close(); err != nil {
			log.Fatalf("eoml: %v", err)
		}
		fmt.Printf("eoml: wrote provenance graph to %s\n", *provPath)
	}
	fmt.Println("eoml:", rep.Summary())
	if rep.FlowsFailed > 0 {
		fmt.Printf("eoml: warning: %d inference flows failed\n", rep.FlowsFailed)
	}
	fmt.Println("\nstage latency breakdown:")
	fmt.Print(rep.Spans.Render())
	if *timeline {
		fmt.Println("\nworker activity timeline:")
		fmt.Print(rep.Timeline.Render(rep.Elapsed.Seconds(), 72))
	}
}
