// Package analysis implements eomlvet, the repo's static-analysis suite.
// It mechanizes the concurrency and resource invariants this codebase has
// already paid to learn in review (see DESIGN.md §10): cancellable channel
// operations in orchestration code, no sleep-polling in library loops,
// joined goroutines, checked Close/Sync/Flush/Rename errors, paired
// tensor-arena Get/Put, and paired trace-span Begin/End.
//
// The suite is deliberately stdlib-only — go/parser, go/ast, go/types and
// the source-mode go/importer — because the module is zero-dependency and
// must stay that way. Analyzers are package-shape agnostic; the driver
// (driver.go) decides which analyzer runs on which import paths.
//
// Findings can be suppressed in-code with a rationale:
//
//	//eomlvet:ignore <check> <why this site is intentionally exempt>
//
// The directive applies to its own line and the line below it, and a
// directive without a rationale is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one analyzer finding, positioned for editors
// (path/file.go:line:col).
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Analyzer is one named check. Exactly one of Run (per-package) and
// RunModule (interprocedural, whole-module) is set.
type Analyzer struct {
	// Name is the check identifier used in output and ignore directives.
	Name string
	// Doc states the invariant and why it exists.
	Doc string
	// AppliesTo reports whether the check reports findings in the package
	// with the given import path; nil means every package. Interprocedural
	// analyzers still see the whole module for call-graph facts — the
	// scope bounds only where diagnostics may land.
	AppliesTo func(pkgPath string) bool
	// Run inspects one type-checked package.
	Run func(*Pass)
	// RunModule inspects the whole module at once, with the shared call
	// graph and fact store (lockguard, ctxflow, locksleep).
	RunModule func(*ModulePass)
}

// Pass is the per-package view an analyzer inspects.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	check  string
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass is the whole-module view an interprocedural analyzer
// inspects: every loaded package, the call graph over them, and the
// propagated fact store. One graph and fact store are shared by all
// module analyzers in a run.
type ModulePass struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Graph *CallGraph
	Facts *Facts

	check  string
	scope  func(pkgPath string) bool
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// InScope reports whether the analyzer may report findings in pkg
// (the analyzer's AppliesTo, applied by the driver; facts still flow
// through out-of-scope packages).
func (p *ModulePass) InScope(pkg *Package) bool {
	return p.scope == nil || p.scope(pkg.Path)
}

// inspectStack walks the file like ast.Inspect while exposing the
// ancestor stack (outermost first, not including n itself).
func inspectStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves the called function or method of call, or nil for
// calls through non-named callees (function values, conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isMethodOn reports whether fn is the method pkgPath.typeName.name
// (pointer or value receiver).
func isMethodOn(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName
}

// returnsError reports whether fn's results include an error.
func returnsError(fn *types.Func) bool {
	results := fn.Type().(*types.Signature).Results()
	for i := 0; i < results.Len(); i++ {
		if named, ok := results.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// parentMap records each node's parent within root, letting analyzers
// classify how an expression's value is used.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingFuncName names the innermost function declaration containing
// pos, for use in messages ("<pkg>.<func>"; "<file scope>" outside one).
func enclosingFuncName(files []*ast.File, pos token.Pos) string {
	for _, f := range files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
				return fd.Name.Name
			}
		}
	}
	return "<file scope>"
}
