package aicca

import "fmt"

// Precision selects the arithmetic the labeler's encode path runs in.
type Precision string

const (
	// PrecisionFloat32 is the full-precision batch-GEMM path — the
	// accuracy oracle.
	PrecisionFloat32 Precision = "float32"
	// PrecisionInt8 is the symmetric int8-quantized GEMM path: weights
	// are quantized per output channel once per training step,
	// activations per tensor per batch. Latents drift from the float
	// oracle by bounded quantization noise; the property tests pin the
	// label-flip rate under 0.5%.
	PrecisionInt8 Precision = "int8"
)

// ParsePrecision maps a config string to a Precision. The empty string
// is the float32 default.
func ParsePrecision(s string) (Precision, error) {
	switch Precision(s) {
	case "", PrecisionFloat32:
		return PrecisionFloat32, nil
	case PrecisionInt8:
		return PrecisionInt8, nil
	}
	return "", fmt.Errorf("aicca: unknown precision %q (want %q or %q)", s, PrecisionFloat32, PrecisionInt8)
}
