package provenance

import (
	"fmt"
	"sort"
	"sync"
)

// Field declares one named, kinded input or output of a component.
type Field struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // entity kind expected, e.g. "granule"
	// Optional marks a field that may be absent.
	Optional bool `json:"optional,omitempty"`
}

// Schema publishes a workflow component's contract — the paper's "clear
// input and output schemas for each workflow component".
type Schema struct {
	Component string  `json:"component"`
	Inputs    []Field `json:"inputs"`
	Outputs   []Field `json:"outputs"`
}

// SchemaRegistry stores component contracts and validates compositions.
type SchemaRegistry struct {
	mu      sync.RWMutex
	schemas map[string]Schema
}

// NewSchemaRegistry returns an empty registry.
func NewSchemaRegistry() *SchemaRegistry {
	return &SchemaRegistry{schemas: map[string]Schema{}}
}

// Register publishes a component schema.
func (r *SchemaRegistry) Register(s Schema) error {
	if s.Component == "" {
		return fmt.Errorf("provenance: schema needs a component name")
	}
	seen := map[string]bool{}
	for _, f := range append(append([]Field{}, s.Inputs...), s.Outputs...) {
		if f.Name == "" || f.Kind == "" {
			return fmt.Errorf("provenance: schema %q has unnamed or unkinded field", s.Component)
		}
		if seen[f.Name] {
			return fmt.Errorf("provenance: schema %q repeats field %q", s.Component, f.Name)
		}
		seen[f.Name] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.schemas[s.Component]; dup {
		return fmt.Errorf("provenance: schema %q already registered", s.Component)
	}
	r.schemas[s.Component] = s
	return nil
}

// Get fetches a schema.
func (r *SchemaRegistry) Get(component string) (Schema, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.schemas[component]
	if !ok {
		return Schema{}, fmt.Errorf("provenance: no schema for %q", component)
	}
	return s, nil
}

// Components lists registered components, sorted.
func (r *SchemaRegistry) Components() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.schemas))
	for c := range r.schemas {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ValidateBinding checks that the entity kinds bound to a component's
// inputs satisfy its schema. bindings maps field name → entity kind.
func (r *SchemaRegistry) ValidateBinding(component string, bindings map[string]string) error {
	s, err := r.Get(component)
	if err != nil {
		return err
	}
	for _, f := range s.Inputs {
		kind, bound := bindings[f.Name]
		if !bound {
			if f.Optional {
				continue
			}
			return fmt.Errorf("provenance: %s: required input %q unbound", component, f.Name)
		}
		if kind != f.Kind {
			return fmt.Errorf("provenance: %s: input %q wants kind %q, got %q", component, f.Name, f.Kind, kind)
		}
	}
	known := map[string]bool{}
	for _, f := range s.Inputs {
		known[f.Name] = true
	}
	for name := range bindings {
		if !known[name] {
			return fmt.Errorf("provenance: %s: unknown input %q", component, name)
		}
	}
	return nil
}

// ValidateChain checks a linear composition: each component's outputs
// must cover the next component's required inputs by kind.
func (r *SchemaRegistry) ValidateChain(components []string) error {
	if len(components) < 2 {
		return nil
	}
	for i := 0; i+1 < len(components); i++ {
		from, err := r.Get(components[i])
		if err != nil {
			return err
		}
		to, err := r.Get(components[i+1])
		if err != nil {
			return err
		}
		produced := map[string]bool{}
		for _, f := range from.Outputs {
			produced[f.Kind] = true
		}
		for _, f := range to.Inputs {
			if f.Optional {
				continue
			}
			if !produced[f.Kind] {
				return fmt.Errorf("provenance: %s does not produce kind %q required by %s",
					from.Component, f.Kind, to.Component)
			}
		}
	}
	return nil
}

// EOMLSchemas returns the published contracts of this repository's five
// workflow components.
func EOMLSchemas() []Schema {
	return []Schema{
		{
			Component: "download",
			Inputs:    []Field{{Name: "listing", Kind: "archive-listing"}},
			Outputs:   []Field{{Name: "granules", Kind: "granule"}},
		},
		{
			Component: "preprocess",
			Inputs:    []Field{{Name: "granules", Kind: "granule"}},
			Outputs:   []Field{{Name: "tiles", Kind: "tiles"}},
		},
		{
			Component: "inference",
			Inputs: []Field{
				{Name: "tiles", Kind: "tiles"},
				{Name: "model", Kind: "model", Optional: true},
			},
			Outputs: []Field{{Name: "labeled", Kind: "tiles"}},
		},
		{
			Component: "shipment",
			Inputs:    []Field{{Name: "labeled", Kind: "tiles"}},
			Outputs:   []Field{{Name: "published", Kind: "tiles"}},
		},
	}
}
