// Command eoml runs the five-stage EO-ML workflow from a YAML
// declaration, in the spirit of the paper's user-facing configuration:
//
//	eoml -init -config workflow.yaml            # write a sample declaration
//	eoml -config workflow.yaml -train           # offline stages + batch run
//	eoml -config workflow.yaml                  # batch run with saved model
//	eoml -config workflow.yaml -stream          # streaming run
//	eoml -config workflow.yaml -metrics-addr localhost:9090
//
// With -train, the tool first performs the offline stages (download
// training granules, fit the RICC autoencoder, cluster the AICCA
// codebook) and saves the artifacts to the paths named under `model:` in
// the config; otherwise it loads them from those paths.
//
// With -metrics-addr (or the metrics_addr config key), the tool serves
// live observability endpoints for the lifetime of the run: /metrics
// (Prometheus text exposition; append ?format=json for JSON) and
// /healthz (200 while every stage is live, 503 once a stage stalls or
// fails). See docs/OPERATIONS.md for the metric catalogue.
//
// With -pprof-addr, the tool additionally serves the Go runtime
// profiles under /debug/pprof/ (CPU, heap, goroutine, block, mutex,
// trace); give it the same address as -metrics-addr to share one
// listener. See the Profiling section of docs/OPERATIONS.md.
//
// Other flags: -timeline prints the worker-activity timeline,
// -stream-gap-ms sets the streaming inter-arrival gap, -provenance
// exports the run's provenance graph, -train-classes and -train-epochs
// tune training.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"time"

	"github.com/eoml/eoml"
)

// attachPprof mounts the runtime profile handlers (CPU, heap, goroutine,
// block, mutex, trace) under /debug/pprof/ on mux.
func attachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// serveHTTP serves mux on addr for the lifetime of the run and returns
// a stop func that closes the server and joins its goroutine, plus the
// bound address for logging.
func serveHTTP(addr string, mux *http.ServeMux) (stop func(), bound net.Addr, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(ln) // returns once stop calls Close
	}()
	return func() {
		_ = srv.Close()
		<-served
	}, ln.Addr(), nil
}

// sampleConfig is the declaration written by -init, mirroring the YAML
// interface the paper describes for its users.
const sampleConfig = `# EO-ML workflow declaration
satellite: Terra
year: 2022
doy: 1
granules: [0, 1, 2]   # five-minute slots; omit for the whole day

archive:
  url: http://localhost:8900
  token: demo

paths:
  data: /tmp/eoml/data      # downloaded MODIS granules
  tiles: /tmp/eoml/tiles    # preprocessed ocean-cloud tiles (NetCDF)
  outbox: /tmp/eoml/outbox  # labeled files staged for shipment
  dest: /tmp/eoml/orion     # destination filesystem

workers:
  download: 3
  preprocess: 8
  inference: 1

tile:
  pixels: 8                # 128 / archive scale (laads-server -scale 16)
  min_cloud_fraction: 0.3

poll_interval_ms: 50      # monitor crawl period
stall_timeout_ms: 300000  # abort if inference makes no progress this long

batch:
  tiles: 256              # flush a coalesced encode batch at this many tiles
  delay_ms: 20            # ... or this long after its first tile

precision: float32        # encode arithmetic: float32 (oracle) or int8 (quantized, faster)

model:
  weights: /tmp/eoml/ricc.hdf
  codebook: /tmp/eoml/aicca-codebook.hdf

# metrics_addr: localhost:9090  # serve /metrics and /healthz during the run
`

func main() {
	configPath := flag.String("config", "workflow.yaml", "YAML workflow declaration")
	train := flag.Bool("train", false, "train the model and codebook before running")
	trainClasses := flag.Int("train-classes", 8, "AICCA codebook size when training")
	trainEpochs := flag.Int("train-epochs", 4, "autoencoder epochs when training")
	timeline := flag.Bool("timeline", false, "print the worker-activity timeline after the run")
	stream := flag.Bool("stream", false, "process granules as a stream instead of a batch")
	streamGapMS := flag.Int("stream-gap-ms", 100, "inter-arrival gap in streaming mode")
	provPath := flag.String("provenance", "", "write the run's provenance graph (JSON) to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address for the run (overrides metrics_addr in the config)")
	pprofAddr := flag.String("pprof-addr", "", "serve /debug/pprof on this address for the run; when it matches the metrics address the two share one listener")
	initConfig := flag.Bool("init", false, "write a sample workflow declaration to -config and exit")
	flag.Parse()

	if *initConfig {
		if _, err := os.Stat(*configPath); err == nil {
			log.Fatalf("eoml: %s already exists; refusing to overwrite", *configPath)
		}
		if err := os.WriteFile(*configPath, []byte(sampleConfig), 0o644); err != nil {
			log.Fatalf("eoml: %v", err)
		}
		fmt.Printf("eoml: wrote sample workflow to %s\n", *configPath)
		fmt.Println("eoml: start an archive with `laads-server -addr :8900 -token demo`, then run `eoml -config", *configPath, "-train`")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg, err := eoml.LoadConfigFile(*configPath)
	if err != nil {
		log.Fatalf("eoml: %v", err)
	}

	var labeler *eoml.Labeler
	if *train {
		fmt.Println("eoml: training RICC model and AICCA codebook…")
		labeler, err = eoml.TrainFromArchive(ctx, *cfg, eoml.TrainOptions{
			Classes: *trainClasses,
			Epochs:  *trainEpochs,
		})
		if err != nil {
			log.Fatalf("eoml: training: %v", err)
		}
		if cfg.ModelPath != "" && cfg.CodebookPath != "" {
			if err := eoml.SaveLabeler(labeler, cfg.ModelPath, cfg.CodebookPath); err != nil {
				log.Fatalf("eoml: saving model: %v", err)
			}
			fmt.Printf("eoml: saved %s and %s\n", cfg.ModelPath, cfg.CodebookPath)
		}
	}

	pipe, err := eoml.NewPipeline(*cfg, labeler)
	if err != nil {
		log.Fatalf("eoml: %v", err)
	}
	var prov *eoml.ProvenanceStore
	if *provPath != "" {
		prov = eoml.NewProvenanceStore()
		pipe.SetProvenance(prov)
	}

	obsAddr := *metricsAddr
	if obsAddr == "" {
		obsAddr = cfg.MetricsAddr
	}
	if obsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", pipe.Metrics())
		mux.Handle("/healthz", pipe.Health())
		what := "/metrics and /healthz"
		if *pprofAddr == obsAddr {
			attachPprof(mux) // profile the run through the same listener
			what = "/metrics, /healthz and /debug/pprof"
		}
		stop, bound, err := serveHTTP(obsAddr, mux)
		if err != nil {
			log.Fatalf("eoml: metrics listener: %v", err)
		}
		defer stop()
		fmt.Printf("eoml: serving %s on http://%s\n", what, bound)
	}
	if *pprofAddr != "" && *pprofAddr != obsAddr {
		mux := http.NewServeMux()
		attachPprof(mux)
		stop, bound, err := serveHTTP(*pprofAddr, mux)
		if err != nil {
			log.Fatalf("eoml: pprof listener: %v", err)
		}
		defer stop()
		fmt.Printf("eoml: serving /debug/pprof on http://%s\n", bound)
	}

	var rep *eoml.Report
	if *stream {
		fmt.Printf("eoml: streaming %d granules…\n", len(cfg.GranuleIDs()))
		arrivals := make(chan int)
		go func() {
			defer close(arrivals)
			for _, g := range cfg.GranuleIDs() {
				select {
				case arrivals <- g.Index:
				case <-ctx.Done():
					return
				}
				time.Sleep(time.Duration(*streamGapMS) * time.Millisecond)
			}
		}()
		rep, err = pipe.RunStream(ctx, arrivals)
	} else {
		fmt.Printf("eoml: running workflow for %d granules…\n", len(cfg.GranuleIDs()))
		rep, err = pipe.Run(ctx)
	}
	if err != nil {
		log.Fatalf("eoml: %v", err)
	}
	if prov != nil {
		out, err := os.Create(*provPath)
		if err != nil {
			log.Fatalf("eoml: %v", err)
		}
		if err := prov.Export(out); err != nil {
			log.Fatalf("eoml: provenance export: %v", err)
		}
		if err := out.Close(); err != nil {
			log.Fatalf("eoml: %v", err)
		}
		fmt.Printf("eoml: wrote provenance graph to %s\n", *provPath)
	}
	fmt.Println("eoml:", rep.Summary())
	if rep.FlowsFailed > 0 {
		fmt.Printf("eoml: warning: %d inference flows failed\n", rep.FlowsFailed)
	}
	fmt.Println("\nstage latency breakdown:")
	fmt.Print(rep.Spans.Render())
	if *timeline {
		fmt.Println("\nworker activity timeline:")
		fmt.Print(rep.Timeline.Render(rep.Elapsed.Seconds(), 72))
	}
}
