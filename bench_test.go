// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md and micro-benchmarks of the hot components.
//
// Figure/table benches wrap the calibrated discrete-event experiments;
// their custom metrics (tiles/s, MB/s, virtual seconds) are the numbers
// EXPERIMENTS.md compares against the paper. Run with:
//
//	go test -bench=. -benchmem ./...
package eoml_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/cluster42"
	"github.com/eoml/eoml/internal/core"
	"github.com/eoml/eoml/internal/experiments"
	"github.com/eoml/eoml/internal/hdf"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/netcdf"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/tensor"
	"github.com/eoml/eoml/internal/tile"
)

// ---- Fig. 3: download speed vs product size ------------------------------

func BenchmarkFig3Download(b *testing.B) {
	model := experiments.DefaultDownloadModel()
	var gain float64
	for i := 0; i < b.N; i++ {
		points := experiments.Fig3(model, 3, int64(i)+1)
		by := map[int]map[float64]experiments.Fig3Point{3: {}, 6: {}}
		for _, p := range points {
			by[p.Workers][p.PerProductGB] = p
		}
		gain = by[6][30].MeanMBps - by[3][30].MeanMBps
	}
	b.ReportMetric(gain, "MB/s-gain-6v3-workers")
}

// ---- Fig. 4 / Fig. 5 / Table I: preprocessing scaling --------------------

func scalingBench(b *testing.B, run func(experiments.ScalingConfig) []experiments.ScalingPoint) {
	cfg := experiments.DefaultScalingConfig()
	cfg.Iterations = 2
	var last []experiments.ScalingPoint
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i) + 1
		last = run(cfg)
	}
	b.ReportMetric(last[0].TilesPerSec, "tiles/s-min-scale")
	b.ReportMetric(last[len(last)-1].TilesPerSec, "tiles/s-max-scale")
}

func BenchmarkFig4StrongWorkers(b *testing.B) {
	scalingBench(b, experiments.Fig4StrongWorkers)
}

func BenchmarkFig4StrongNodes(b *testing.B) {
	scalingBench(b, experiments.Fig4StrongNodes)
}

func BenchmarkFig5WeakWorkers(b *testing.B) {
	scalingBench(b, experiments.Fig5WeakWorkers)
}

func BenchmarkFig5WeakNodes(b *testing.B) {
	scalingBench(b, experiments.Fig5WeakNodes)
}

func BenchmarkTable1Throughput(b *testing.B) {
	cfg := experiments.DefaultScalingConfig()
	cfg.Iterations = 1
	var tab experiments.Table1
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i) + 1
		tab = experiments.RunTable1(cfg)
	}
	b.ReportMetric(tab.StrongWorkers[0].TilesPerSec, "tiles/s-1-worker")
	b.ReportMetric(tab.StrongNodes[9].TilesPerSec, "tiles/s-10-nodes")
	b.ReportMetric(tab.WeakNodes[9].TilesPerSec, "tiles/s-10-nodes-weak")
}

// ---- Fig. 6 / Fig. 7: pipeline timeline and latency breakdown ------------

func BenchmarkFig6Timeline(b *testing.B) {
	cfg := experiments.DefaultPipelineConfig()
	var res *experiments.PipelineResult
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i) + 1
		r, err := experiments.RunPipeline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.TotalSeconds, "virtual-s-pipeline")
	b.ReportMetric(float64(res.Timeline.PeakCount("preprocess")), "peak-preprocess-workers")
}

func BenchmarkFig7Latency(b *testing.B) {
	cfg := experiments.DefaultPipelineConfig()
	var res *experiments.PipelineResult
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i) + 1
		r, err := experiments.RunPipeline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	if dl, ok := res.Spans.Get("download.launch"); ok {
		b.ReportMetric(dl.Duration(), "virtual-s-download-launch")
	}
	b.ReportMetric(res.MeanFlowOverhead*1000, "ms-flow-action-overhead")
}

// ---- Headline: 12,000 tiles / 80 workers / 10 nodes ----------------------

func BenchmarkHeadline12k(b *testing.B) {
	cfg := experiments.DefaultScalingConfig()
	var secs, rate float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i) + 1
		secs, rate = experiments.Headline(cfg)
	}
	b.ReportMetric(secs, "virtual-s-12k-tiles")
	b.ReportMetric(rate, "tiles/s")
}

// ---- Ablations ------------------------------------------------------------

func BenchmarkAblationContention(b *testing.B) {
	var points []experiments.ContentionPoint
	for i := 0; i < b.N; i++ {
		points = experiments.AblationContention(100, nil)
	}
	last := points[len(points)-1]
	b.ReportMetric(last.EfficiencyShared, "efficiency-64-workers")
}

func BenchmarkAblationPoll(b *testing.B) {
	var points []experiments.PollPoint
	for i := 0; i < b.N; i++ {
		p, err := experiments.AblationPoll([]float64{0.1, 2.0})
		if err != nil {
			b.Fatal(err)
		}
		points = p
	}
	b.ReportMetric(points[1].TotalSeconds-points[0].TotalSeconds, "virtual-s-cost-of-slow-poll")
}

func BenchmarkAblationConv(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	g, err := tensor.NewConvGeom(6, 16, 3, 2, 1, 32, 32)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(8, 6, 32, 32)
	x.Randn(r, 1)
	w := tensor.New(16, 6, 3, 3)
	w.Randn(r, 0.5)
	wmat := tensor.New(6*3*3, 16)
	for oc := 0; oc < 16; oc++ {
		for i := 0; i < 6*3*3; i++ {
			wmat.Data[i*16+oc] = w.Data[oc*6*3*3+i]
		}
	}
	b.Run("im2col", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cols := tensor.Im2Col(x, g)
			_ = tensor.MatMul(cols, wmat)
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tensor.ConvDirect(x, w, nil, g)
		}
	})
}

func BenchmarkAblationLinkage(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	data := make([][]float32, 300)
	for i := range data {
		row := make([]float32, 16)
		center := float32(i % 6 * 10)
		for d := range row {
			row[d] = center + float32(r.NormFloat64())
		}
		data[i] = row
	}
	for _, linkage := range []cluster42.Linkage{cluster42.Ward, cluster42.Average} {
		linkage := linkage
		b.Run(linkage.String(), func(b *testing.B) {
			var sse float64
			for i := 0; i < b.N; i++ {
				res, err := cluster42.Agglomerate(data, 6, linkage)
				if err != nil {
					b.Fatal(err)
				}
				sse, err = cluster42.WithinSSE(data, res.Centroids, res.Labels)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sse, "within-SSE")
		})
	}
}

func BenchmarkAblationRotLoss(b *testing.B) {
	tiles := benchTiles(64, 8, 3, 5)
	eval := benchTiles(16, 8, 3, 6)
	for _, beta := range []float64{0, 0.5} {
		beta := beta
		name := "beta0"
		if beta > 0 {
			name = "beta0.5"
		}
		b.Run(name, func(b *testing.B) {
			var invErr float64
			for i := 0; i < b.N; i++ {
				cfg := ricc.Config{
					TileSize: 8, Channels: 3, LatentDim: 8, Beta: beta,
					LR: 2e-3, Epochs: 4, BatchSize: 16, Rotations: 2, Seed: 7,
				}
				m, err := ricc.NewModel(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Train(tiles); err != nil {
					b.Fatal(err)
				}
				invErr, err = m.InvarianceError(eval)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(invErr, "rotation-invariance-error")
		})
	}
}

// ---- Component micro-benchmarks -------------------------------------------

func benchTriple(b *testing.B) (*hdf.File, *hdf.File, *hdf.File, *modis.Generator) {
	b.Helper()
	gen, err := modis.NewGenerator(8)
	if err != nil {
		b.Fatal(err)
	}
	// Index 2 is a verified daytime slot on the synthetic Terra orbit.
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: 2}
	mod02, err := gen.Generate(modis.MOD021KM, g)
	if err != nil {
		b.Fatal(err)
	}
	mod03, _ := gen.Generate(modis.MOD03, g)
	mod06, _ := gen.Generate(modis.MOD06L2, g)
	return mod02, mod03, mod06, gen
}

func BenchmarkGranuleGenerate(b *testing.B) {
	gen, err := modis.NewGenerator(8)
	if err != nil {
		b.Fatal(err)
	}
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(modis.MOD021KM, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTileExtract(b *testing.B) {
	mod02, mod03, mod06, gen := benchTriple(b)
	run := func(b *testing.B, opts tile.Options) {
		b.ReportAllocs()
		var tiles int
		for i := 0; i < b.N; i++ {
			res, err := tile.Extract(mod02, mod03, mod06, opts)
			if err != nil {
				b.Fatal(err)
			}
			tiles = len(res.Tiles)
		}
		b.ReportMetric(float64(tiles), "tiles/granule")
	}
	b.Run("plain", func(b *testing.B) {
		run(b, tile.Options{TileSize: gen.TilePixels()})
	})
	b.Run("arena", func(b *testing.B) {
		run(b, tile.Options{TileSize: gen.TilePixels(), Arena: tensor.NewShardedArena()})
	})
}

func BenchmarkNetCDFRoundTrip(b *testing.B) {
	mod02, mod03, mod06, gen := benchTriple(b)
	res, err := tile.Extract(mod02, mod03, mod06, tile.Options{TileSize: gen.TilePixels()})
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Tiles) == 0 {
		b.Fatal("no tiles")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := tile.ToNetCDF(res.Tiles)
		if err != nil {
			b.Fatal(err)
		}
		data, err := netcdf.Encode(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := netcdf.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRICCEncode(b *testing.B) {
	tiles := benchTiles(256, 16, 6, 9)
	cfg := ricc.Config{
		TileSize: 16, Channels: 6, LatentDim: 32, Beta: 0.5,
		LR: 1e-3, Epochs: 1, BatchSize: 32, Rotations: 1, Seed: 1,
	}
	m, err := ricc.NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Train(tiles[:64]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Encode(tiles); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tiles)), "tiles/op")
}

func BenchmarkHDFDecode(b *testing.B) {
	gen, _ := modis.NewGenerator(8)
	g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: 2}
	data, err := gen.GenerateBytes(modis.MOD021KM, g)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hdf.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- PR: blocked kernels, arena reuse, cross-file batching ----------------

// BenchmarkMatMulBlocked compares the naive oracle against the blocked
// SIMD kernel at the 512^3 shape the acceptance criterion names.
func BenchmarkMatMulBlocked(b *testing.B) {
	const m, k, n = 512, 512, 512
	r := rand.New(rand.NewSource(11))
	a := tensor.New(m, k)
	a.Randn(r, 1)
	c := tensor.New(k, n)
	c.Randn(r, 1)
	flops := 2 * float64(m) * float64(k) * float64(n)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tensor.MatMulNaive(a, c)
		}
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
	})
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tensor.MatMul(a, c)
		}
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
	})
}

// BenchmarkEncodeArena measures the encode hot path three ways over one
// trained model and tile set: the allocate-everything baseline
// (EncodeNoArena, training Forward kernels), the sync.Pool-backed
// contended arena kept as the oracle (EncodeLocked), and the production
// sharded-arena batch-GEMM path (Encode). The PR-5 acceptance bar is
// arena ns/op ≤ noarena — buffer reuse must not cost wall-clock.
func BenchmarkEncodeArena(b *testing.B) {
	tiles := benchTiles(256, 16, 6, 9)
	cfg := ricc.Config{
		TileSize: 16, Channels: 6, LatentDim: 32, Beta: 0.5,
		LR: 1e-3, Epochs: 1, BatchSize: 32, Rotations: 1, Seed: 1,
	}
	m, err := ricc.NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Train(tiles[:64]); err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, encode func([]*tile.Tile) ([][]float32, error)) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := encode(tiles); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(tiles)), "tiles/op")
	}
	b.Run("noarena", func(b *testing.B) { run(b, m.EncodeNoArena) })
	b.Run("contended", func(b *testing.B) { run(b, m.EncodeLocked) })
	b.Run("arena", func(b *testing.B) { run(b, m.Encode) })
}

// BenchmarkLabelFileBatched compares per-file labeling against the
// cross-file BatchLabeler. Both variants label the exact same file set
// every iteration and report tiles/s from the same counter — the sum of
// tile counts each LabelFile call returns — so the two numbers measure
// identical work. The batcher is constructed outside the timed region
// (it is a long-lived service in the pipeline, not per-iteration
// setup). AppendLabels is idempotent, so files can be relabeled across
// iterations.
func BenchmarkLabelFileBatched(b *testing.B) {
	const files, perFile = 8, 32
	train := benchTiles(64, 8, 3, 5)
	cfg := ricc.Config{
		TileSize: 8, Channels: 3, LatentDim: 8, Beta: 0,
		LR: 2e-3, Epochs: 2, BatchSize: 16, Rotations: 1, Seed: 7,
	}
	l, _, err := aicca.Train(train, cfg, 4)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	paths := make([]string, files)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("bench%02d.nc", i))
		if err := tile.WriteNetCDF(paths[i], benchTiles(perFile, 8, 3, int64(40+i))); err != nil {
			b.Fatal(err)
		}
	}
	report := func(b *testing.B, labeled int64) {
		if labeled != int64(files*perFile)*int64(b.N) {
			b.Fatalf("labeled %d tiles, want %d", labeled, int64(files*perFile)*int64(b.N))
		}
		b.ReportMetric(float64(labeled)/b.Elapsed().Seconds(), "tiles/s")
	}
	b.Run("sequential", func(b *testing.B) {
		var labeled int64
		for i := 0; i < b.N; i++ {
			for _, p := range paths {
				n, err := l.LabelFile(p)
				if err != nil {
					b.Fatal(err)
				}
				labeled += int64(n)
			}
		}
		report(b, labeled)
	})
	b.Run("batched", func(b *testing.B) {
		bl := aicca.NewBatchLabeler(l, aicca.BatchConfig{
			MaxTiles: 128, MaxDelay: 2 * time.Millisecond,
		})
		var labeled atomic.Int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make(chan error, files)
			for _, p := range paths {
				wg.Add(1)
				go func(p string) {
					defer wg.Done()
					n, err := bl.LabelFile(p)
					if err != nil {
						errs <- err
						return
					}
					labeled.Add(int64(n))
				}(p)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		bl.Close()
		report(b, labeled.Load())
	})
}

// ---- PR: int8 quantized inference + end-to-end pipeline throughput --------

// BenchmarkEncodeQ8 compares the float32 batch-GEMM encode against the
// int8-quantized path on the RICC-scale model. The acceptance bar is
// int8 tiles/s ≥ 1.5× float32 on the same host; the accuracy side of
// the trade is pinned separately by the aicca label-flip gate.
func BenchmarkEncodeQ8(b *testing.B) {
	tiles := benchTiles(256, 16, 6, 9)
	cfg := ricc.Config{
		TileSize: 16, Channels: 6, LatentDim: 32, Beta: 0.5,
		LR: 1e-3, Epochs: 1, BatchSize: 32, Rotations: 1, Seed: 1,
	}
	m, err := ricc.NewModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Train(tiles[:64]); err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, encode func([]*tile.Tile) ([][]float32, error)) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := encode(tiles); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(tiles))*float64(b.N)/b.Elapsed().Seconds(), "tiles/s")
	}
	b.Run("float32", func(b *testing.B) { run(b, m.EncodeBatch) })
	b.Run("int8", func(b *testing.B) { run(b, m.EncodeBatchQ8) })
}

// BenchmarkMatMulSmall covers the GEMM shapes the work-aware parallel
// cutoff exists for: per-tile conv matmuls too small to amortize a
// goroutine handoff. Before the flops-based cutoff these forked on row
// count alone and lost the win to scheduling overhead.
func BenchmarkMatMulSmall(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	for _, s := range []struct{ m, k, n int }{
		{16, 54, 16},   // conv1 of a 4 px tile batch
		{64, 144, 32},  // conv2 of a small batch
		{32, 512, 512}, // skinny dense slab
	} {
		a := tensor.New(s.m, s.k)
		a.Randn(r, 1)
		c := tensor.New(s.k, s.n)
		c.Randn(r, 1)
		flops := 2 * float64(s.m) * float64(s.k) * float64(s.n)
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = tensor.MatMul(a, c)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkPipelineE2E drives the real five-stage pipeline — ingest
// from a LAADS-style archive over HTTP, tile extraction, encode, label,
// ship — and reports whole-pipeline granules/s and tiles/s, the
// end-to-end numbers ROADMAP 3(c) asks for. Model training and granule
// discovery run once outside the timed region; each iteration is one
// full batch run into fresh directories.
func BenchmarkPipelineE2E(b *testing.B) {
	const scale = 64 // tiny granules; tile edge 4 px
	gen, err := modis.NewGenerator(scale)
	if err != nil {
		b.Fatal(err)
	}
	var granules []int
	var trainTiles []*tile.Tile
	for idx := 0; idx < modis.GranulesPerDay && len(granules) < 2; idx++ {
		g := modis.GranuleID{Satellite: modis.Terra, Year: 2022, DOY: 1, Index: idx}
		mod02, err := gen.Generate(modis.MOD021KM, g)
		if err != nil {
			b.Fatal(err)
		}
		if flag, _ := mod02.AttrString("DayNightFlag"); flag != "Day" {
			continue
		}
		mod03, _ := gen.Generate(modis.MOD03, g)
		mod06, _ := gen.Generate(modis.MOD06L2, g)
		res, err := tile.Extract(mod02, mod03, mod06, tile.Options{TileSize: 4})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tiles) < 3 {
			continue
		}
		granules = append(granules, idx)
		if trainTiles == nil {
			trainTiles = res.Tiles
		}
	}
	if len(granules) < 2 {
		b.Fatalf("found only %d productive granules", len(granules))
	}
	rcfg := ricc.Config{
		TileSize: 4, Channels: 6, LatentDim: 8, Beta: 0.3,
		LR: 2e-3, Epochs: 2, BatchSize: 16, Rotations: 1, Seed: 5,
	}
	k := 4
	if len(trainTiles) < 8 {
		k = 2
	}
	labeler, _, err := aicca.Train(trainTiles, rcfg, k)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := laads.NewServer(laads.ServerConfig{ScaleDown: scale, Token: "bench-token"})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var nGranules, nTiles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		root := b.TempDir() // fresh directories: every run does the full work
		cfg := core.DefaultConfig()
		cfg.ArchiveURL = ts.URL
		cfg.ArchiveToken = "bench-token"
		cfg.Granules = granules
		cfg.DataDir = filepath.Join(root, "data")
		cfg.TileDir = filepath.Join(root, "tiles")
		cfg.OutboxDir = filepath.Join(root, "outbox")
		cfg.DestDir = filepath.Join(root, "orion")
		cfg.TilePixels = 4
		cfg.PreprocessWorkers = 4
		cfg.PollInterval = 5 * time.Millisecond
		cfg.BatchDelay = 2 * time.Millisecond
		b.StartTimer()
		p, err := core.New(cfg, labeler)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := p.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if rep.FilesShipped == 0 {
			b.Fatal("pipeline shipped nothing — the bench measured an empty run")
		}
		nGranules += int64(rep.GranulesRequested)
		nTiles += int64(rep.TilesLabeled)
	}
	b.ReportMetric(float64(nGranules)/b.Elapsed().Seconds(), "granules/s")
	b.ReportMetric(float64(nTiles)/b.Elapsed().Seconds(), "tiles/s")
}

// benchTiles fabricates synthetic tiles for ML benches.
func benchTiles(n, ts, nb int, seed int64) []*tile.Tile {
	r := rand.New(rand.NewSource(seed))
	bands := make([]int, nb)
	for b := range bands {
		bands[b] = b
	}
	tiles := make([]*tile.Tile, n)
	for i := range tiles {
		data := make([]float32, nb*ts*ts)
		for j := range data {
			data[j] = float32(r.Float64())
		}
		tiles[i] = &tile.Tile{Data: data, Bands: bands, TileSize: ts, Label: -1}
	}
	return tiles
}
