package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Facts is the per-function fact store the interprocedural analyzers
// share. Facts are computed once per module run: a direct scan of each
// body for blocking primitives, then one bottom-up propagation pass
// over the call-graph SCCs.
type Facts struct {
	Graph *CallGraph
	// MayBlock maps each declared function to the witness explaining why
	// it can block *un-cancellably* (absent = cannot): propagation stops
	// at calls to context-taking callees, unless the call site passes a
	// fresh Background()/TODO(). This is ctxflow's fact.
	MayBlock map[*FuncNode]*BlockCause
	// MayBlockRaw is the same fact without the context stop: any call
	// chain reaching a blocking primitive, cancellable or not. This is
	// locksleep's fact — a cancellable wait still holds the mutex while
	// it waits.
	MayBlockRaw map[*FuncNode]*BlockCause
	// TakesCtx records functions with a context.Context parameter.
	TakesCtx map[*FuncNode]bool
}

// BlockCause is the evidence trail behind a MayBlock fact: either a
// blocking primitive in the function's own body, or a call to a
// function that may block (Via), whose own cause chains further down.
type BlockCause struct {
	Pos  token.Pos
	What string      // human description of the primitive or call
	Via  *FuncNode   // non-nil when the cause is a call to another function
	Next *BlockCause // the callee's own cause, for chain rendering
}

// Chain renders the cause trail ("receives from a channel" or
// "calls laads.Acquire, which waits on a timer").
func (c *BlockCause) Chain() string {
	var parts []string
	for cur := c; cur != nil; cur = cur.Next {
		parts = append(parts, cur.What)
		if len(parts) >= 4 { // deep chains add noise, not information
			parts = append(parts, "…")
			break
		}
	}
	return strings.Join(parts, ", which ")
}

// ComputeFacts scans every declared function for direct blocking
// primitives and propagates may-block bottom-up across SCCs. Blocking
// does not propagate across calls to context-taking functions unless
// the call site passes a fresh context.Background()/context.TODO() —
// a cancellable callee blocks only as long as its caller lets it,
// while a dead context revives the un-cancellable wait.
func ComputeFacts(g *CallGraph) *Facts {
	f := &Facts{
		Graph:       g,
		MayBlock:    map[*FuncNode]*BlockCause{},
		MayBlockRaw: map[*FuncNode]*BlockCause{},
		TakesCtx:    map[*FuncNode]bool{},
	}
	for _, node := range g.Declared {
		f.TakesCtx[node] = signatureTakesContext(node.Fn)
		if cause := directBlockCause(node); cause != nil {
			f.MayBlock[node] = cause
			f.MayBlockRaw[node] = cause
		}
	}
	// Bottom-up: callees before callers, SCC members as one unit
	// (iterated to a fixpoint inside each component for mutual
	// recursion).
	sccs := g.BottomUpSCCs()
	propagate := func(fact map[*FuncNode]*BlockCause, ctxStops bool) {
		for _, scc := range sccs {
			for changed := true; changed; {
				changed = false
				for _, node := range scc {
					if fact[node] != nil {
						continue
					}
					for _, site := range node.Out {
						if site.Go || site.Callee.Decl == nil {
							continue
						}
						cause := fact[site.Callee]
						if cause == nil {
							continue
						}
						if ctxStops && f.TakesCtx[site.Callee] && !passesDeadContext(node, site) {
							continue // cancellable from this call site
						}
						fact[node] = &BlockCause{
							Pos:  site.Pos,
							What: "calls " + funcLabel(site.Callee.Fn),
							Via:  site.Callee,
							Next: cause,
						}
						changed = true
						break
					}
				}
			}
		}
	}
	propagate(f.MayBlock, true)
	propagate(f.MayBlockRaw, false)
	return f
}

// signatureTakesContext reports whether fn has a context.Context
// parameter.
func signatureTakesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// passesDeadContext reports whether the call at site hands its
// context-taking callee a context.Background() or context.TODO()
// argument built inline — severing the caller's cancellation.
func passesDeadContext(caller *FuncNode, site *CallSite) bool {
	dead := false
	ast.Inspect(caller.Decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() != site.Pos {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := calleeFunc(caller.Pkg.Info, inner)
			if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
				dead = true
			}
		}
		return false
	})
	return dead
}

// directBlockCause scans one declared body for blocking primitives:
// channel sends/receives outside a select, selects that can neither
// bail out (no default) nor observe cancellation or shutdown (no
// ctx.Done()/stop-channel case), time.Sleep, and ctx-less net/http
// entry points. Code inside go-literals is excluded — it blocks the
// goroutine, not this frame (and is ctxsend/lonegoroutine territory).
// sync primitives (Mutex.Lock, WaitGroup.Wait, Cond.Wait) are
// deliberately out: bounded-critical-section waits are the lock
// discipline lockguard/locksleep police, not context flow.
func directBlockCause(node *FuncNode) *BlockCause {
	var cause *BlockCause
	info := node.Pkg.Info
	inspectStack(wrapDecl(node.Decl), func(n ast.Node, stack []ast.Node) {
		if cause != nil || underGoLiteral(n, stack) {
			return
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if !insideSelectComm(n, stack) {
				cause = &BlockCause{Pos: n.Pos(), What: "sends on a channel"}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !insideSelectComm(n, stack) {
				cause = &BlockCause{Pos: n.Pos(), What: "receives from a channel"}
			}
		case *ast.SelectStmt:
			if !selectCanBail(info, n) {
				cause = &BlockCause{Pos: n.Pos(), What: "selects with no default, ctx.Done(), or stop-channel case"}
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			switch {
			case isPkgFunc(fn, "time", "Sleep"):
				cause = &BlockCause{Pos: n.Pos(), What: "calls time.Sleep"}
			case isPkgFunc(fn, "net/http", "Get") || isPkgFunc(fn, "net/http", "Post") ||
				isPkgFunc(fn, "net/http", "PostForm") || isPkgFunc(fn, "net/http", "Head"):
				cause = &BlockCause{Pos: n.Pos(), What: "calls ctx-less net/http." + fn.Name()}
			}
		}
	})
	return cause
}

// underGoLiteral reports whether n sits inside a go-statement literal
// or a plain `go f(...)` call's argument list within the walked decl.
func underGoLiteral(n ast.Node, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if g, ok := stack[i].(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok &&
				n.Pos() >= lit.Body.Pos() && n.End() <= lit.Body.End() {
				return true
			}
		}
	}
	return false
}

// insideSelectComm reports whether n is the communication operation of
// a select case (the select itself is then the blocking construct and
// is judged by selectCanBail).
func insideSelectComm(n ast.Node, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if cc, ok := stack[i].(*ast.CommClause); ok {
			return cc.Comm != nil && n.Pos() >= cc.Comm.Pos() && n.End() <= cc.Comm.End()
		}
	}
	return false
}

// selectCanBail reports whether a select can either skip communication
// (default clause) or be released by cancellation or shutdown: a
// ctx.Done() receive, or a receive from a channel whose name marks it
// as a stop/done/quit/close signal (the repo's stop-channel idiom —
// close(stopCh) releases every such receiver at shutdown).
func selectCanBail(info *types.Info, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc := clause.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default
		}
		var expr ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			expr = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				expr = s.Rhs[0]
			}
		}
		recv, ok := ast.Unparen(expr).(*ast.UnaryExpr)
		if !ok || recv.Op != token.ARROW {
			continue
		}
		if call, ok := ast.Unparen(recv.X).(*ast.CallExpr); ok {
			fn := calleeFunc(info, call)
			if fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				return true
			}
			continue
		}
		if stopChannelName(chanExprName(recv.X)) {
			return true
		}
	}
	return false
}

// chanExprName extracts the terminal identifier of a channel expression
// (`stop`, `e.stopScal`, `b.stop` all yield the field/var name).
func chanExprName(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// stopChannelName reports whether a channel identifier names a shutdown
// signal by the repo's conventions.
func stopChannelName(name string) bool {
	lower := strings.ToLower(name)
	for _, marker := range []string{"stop", "done", "quit", "close", "exit", "cancel"} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

// funcLabel renders a function for diagnostics: "pkg.Func" or
// "pkg.(*Type).Method" with the package's base name only.
func funcLabel(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			name = fmt.Sprintf("(%s%s).%s", star, named.Obj().Name(), fn.Name())
		}
	}
	if fn.Pkg() != nil {
		parts := strings.Split(fn.Pkg().Path(), "/")
		return parts[len(parts)-1] + "." + name
	}
	return name
}
