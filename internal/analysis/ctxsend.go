package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxSend enforces the cancellation invariant PR 2 fixed by hand: in the
// orchestration packages (internal/stage, internal/core, internal/watch,
// internal/serve) a channel send or receive must not be able to block
// past context cancellation. Concretely the operation must be the communication of a
// select case, and that select must carry a ctx.Done() receive case or a
// default clause. Ranging over a channel is flagged too, since a range
// blocks until the producer closes the channel; provably bounded joins
// get an ignore directive with the boundedness argument as rationale.
var CtxSend = &Analyzer{
	Name: "ctxsend",
	Doc: "channel operations in orchestration packages must sit inside a " +
		"select with a ctx.Done() case (or a default clause)",
	AppliesTo: pathSuffixAny("/internal/stage", "/internal/core", "/internal/watch", "/internal/serve"),
	Run:       runCtxSend,
}

func runCtxSend(pass *Pass) {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.SendStmt:
				if !selectGuarded(pass, n, stack) {
					pass.Reportf(n.Pos(), "channel send outside a select with a ctx.Done() case; a cancelled run can block here forever")
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !selectGuarded(pass, n, stack) {
					pass.Reportf(n.Pos(), "channel receive outside a select with a ctx.Done() case; a cancelled run can block here forever")
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over a channel blocks until the producer closes it; prove the close is bounded or select on ctx.Done()")
					}
				}
			}
		})
	}
}

// selectGuarded reports whether node is the communication of a select
// case whose select can observe cancellation (ctx.Done() case) or never
// blocks (default clause).
func selectGuarded(pass *Pass, node ast.Node, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		cc, ok := stack[i].(*ast.CommClause)
		if !ok {
			continue
		}
		// The node must be part of the case's communication, not its body.
		if cc.Comm == nil || node.Pos() < cc.Comm.Pos() || node.End() > cc.Comm.End() {
			return false
		}
		// The walk parent chain is SelectStmt → BlockStmt → CommClause.
		var sel *ast.SelectStmt
		for j := i - 1; j >= 0; j-- {
			if s, ok := stack[j].(*ast.SelectStmt); ok {
				sel = s
				break
			}
		}
		if sel == nil {
			return false
		}
		for _, clause := range sel.Body.List {
			c := clause.(*ast.CommClause)
			if c.Comm == nil || isDoneComm(pass, c.Comm) {
				return true
			}
		}
		return false
	}
	return false
}

// isDoneComm reports whether the select communication stmt receives from
// a context's Done channel (`case <-ctx.Done():`, with or without an
// assignment).
func isDoneComm(pass *Pass, stmt ast.Stmt) bool {
	var expr ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	recv, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || recv.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(recv.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass.Info, call)
	return fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}
