package zambeze

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func twoFacilityOrchestrator(t *testing.T) (*Orchestrator, *Agent, *Agent) {
	t.Helper()
	o := NewOrchestrator()
	olcf, err := NewAgent("olcf", 4)
	if err != nil {
		t.Fatal(err)
	}
	nersc, err := NewAgent("nersc", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Connect(olcf); err != nil {
		t.Fatal(err)
	}
	if err := o.Connect(nersc); err != nil {
		t.Fatal(err)
	}
	return o, olcf, nersc
}

func TestCrossFacilityCampaign(t *testing.T) {
	o, olcf, nersc := twoFacilityOrchestrator(t)
	var mu sync.Mutex
	var order []string
	record := func(name string) Plugin {
		return func(ctx context.Context, params map[string]any) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return name + ":" + fmt.Sprint(params["x"]), nil
		}
	}
	if err := olcf.RegisterPlugin("preprocess", record("olcf.preprocess")); err != nil {
		t.Fatal(err)
	}
	if err := nersc.RegisterPlugin("analyze", record("nersc.analyze")); err != nil {
		t.Fatal(err)
	}

	c := &Campaign{
		Name: "eo-ml-cross-site",
		Activities: []Activity{
			{ID: "pre", Facility: "olcf", Plugin: "preprocess", Params: map[string]any{"x": 1}},
			{ID: "ana", Facility: "nersc", Plugin: "analyze", Params: map[string]any{"x": 2}, DependsOn: []string{"pre"}},
		},
	}
	run, err := o.Submit(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "olcf.preprocess" || order[1] != "nersc.analyze" {
		t.Fatalf("order = %v", order)
	}
	if run.State("ana") != StateSucceeded {
		t.Fatalf("ana state %v", run.State("ana"))
	}
	res, err := run.Result("ana")
	if err != nil || res != "nersc.analyze:2" {
		t.Fatalf("result %v %v", res, err)
	}
}

func TestFailurePropagatesAsSkip(t *testing.T) {
	o, olcf, _ := twoFacilityOrchestrator(t)
	ran := int64(0)
	if err := olcf.RegisterPlugin("boom", func(ctx context.Context, p map[string]any) (any, error) {
		return nil, errors.New("facility outage")
	}); err != nil {
		t.Fatal(err)
	}
	if err := olcf.RegisterPlugin("after", func(ctx context.Context, p map[string]any) (any, error) {
		atomic.AddInt64(&ran, 1)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	c := &Campaign{
		Name: "fails",
		Activities: []Activity{
			{ID: "a", Facility: "olcf", Plugin: "boom"},
			{ID: "b", Facility: "olcf", Plugin: "after", DependsOn: []string{"a"}},
			{ID: "c", Facility: "olcf", Plugin: "after", DependsOn: []string{"b"}},
		},
	}
	run, err := o.Submit(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(context.Background()); err == nil {
		t.Fatal("campaign failure swallowed")
	}
	if run.State("a") != StateFailed || run.State("b") != StateSkipped || run.State("c") != StateSkipped {
		t.Fatalf("states: a=%v b=%v c=%v", run.State("a"), run.State("b"), run.State("c"))
	}
	if atomic.LoadInt64(&ran) != 0 {
		t.Fatal("downstream activity ran after upstream failure")
	}
}

func TestCampaignValidation(t *testing.T) {
	cases := map[string]*Campaign{
		"no name":       {Activities: []Activity{{ID: "a", Facility: "f", Plugin: "p"}}},
		"no activities": {Name: "x"},
		"no id":         {Name: "x", Activities: []Activity{{Facility: "f", Plugin: "p"}}},
		"no facility":   {Name: "x", Activities: []Activity{{ID: "a", Plugin: "p"}}},
		"dup id": {Name: "x", Activities: []Activity{
			{ID: "a", Facility: "f", Plugin: "p"}, {ID: "a", Facility: "f", Plugin: "p"}}},
		"unknown dep": {Name: "x", Activities: []Activity{
			{ID: "a", Facility: "f", Plugin: "p", DependsOn: []string{"ghost"}}}},
		"self dep": {Name: "x", Activities: []Activity{
			{ID: "a", Facility: "f", Plugin: "p", DependsOn: []string{"a"}}}},
		"cycle": {Name: "x", Activities: []Activity{
			{ID: "a", Facility: "f", Plugin: "p", DependsOn: []string{"b"}},
			{ID: "b", Facility: "f", Plugin: "p", DependsOn: []string{"a"}}}},
	}
	for name, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSubmitRejectsUnknownFacilityAndPlugin(t *testing.T) {
	o, olcf, _ := twoFacilityOrchestrator(t)
	if err := olcf.RegisterPlugin("ok", func(ctx context.Context, p map[string]any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	c := &Campaign{Name: "x", Activities: []Activity{{ID: "a", Facility: "alcf", Plugin: "ok"}}}
	if _, err := o.Submit(context.Background(), c); err == nil {
		t.Fatal("unconnected facility accepted")
	}
	// Unknown plugin is a runtime activity failure, not a submit error.
	c2 := &Campaign{Name: "y", Activities: []Activity{{ID: "a", Facility: "olcf", Plugin: "ghost"}}}
	run, err := o.Submit(context.Background(), c2)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(context.Background()); err == nil {
		t.Fatal("missing plugin succeeded")
	}
}

func TestParallelFanOutRespectsAgentConcurrency(t *testing.T) {
	o := NewOrchestrator()
	agent, err := NewAgent("olcf", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Connect(agent); err != nil {
		t.Fatal(err)
	}
	var now, peak int64
	if err := agent.RegisterPlugin("work", func(ctx context.Context, p map[string]any) (any, error) {
		v := atomic.AddInt64(&now, 1)
		for {
			pk := atomic.LoadInt64(&peak)
			if v <= pk || atomic.CompareAndSwapInt64(&peak, pk, v) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		atomic.AddInt64(&now, -1)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	var acts []Activity
	for i := 0; i < 10; i++ {
		acts = append(acts, Activity{ID: fmt.Sprintf("a%d", i), Facility: "olcf", Plugin: "work"})
	}
	run, err := o.Submit(context.Background(), &Campaign{Name: "fan", Activities: acts})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p > 2 {
		t.Fatalf("peak concurrency %d exceeds agent bound 2", p)
	}
}

func TestEventsLogLifecycle(t *testing.T) {
	o, olcf, _ := twoFacilityOrchestrator(t)
	if err := olcf.RegisterPlugin("ok", func(ctx context.Context, p map[string]any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	run, err := o.Submit(context.Background(), &Campaign{
		Name:       "log",
		Activities: []Activity{{ID: "a", Facility: "olcf", Plugin: "ok"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	events := run.Events()
	if len(events) < 2 {
		t.Fatalf("events = %v", events)
	}
	if events[0].State != StateDispatch || events[len(events)-1].State != StateSucceeded {
		t.Fatalf("lifecycle: %v", events)
	}
}

func TestPluginPanicIsFailure(t *testing.T) {
	o, olcf, _ := twoFacilityOrchestrator(t)
	if err := olcf.RegisterPlugin("panic", func(ctx context.Context, p map[string]any) (any, error) {
		panic("plugin bug")
	}); err != nil {
		t.Fatal(err)
	}
	run, err := o.Submit(context.Background(), &Campaign{
		Name:       "p",
		Activities: []Activity{{ID: "a", Facility: "olcf", Plugin: "panic"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(context.Background()); err == nil {
		t.Fatal("panic swallowed")
	}
}

func TestAgentValidation(t *testing.T) {
	if _, err := NewAgent("", 1); err == nil {
		t.Error("empty facility accepted")
	}
	a, _ := NewAgent("x", 1)
	if err := a.RegisterPlugin("", nil); err == nil {
		t.Error("empty plugin accepted")
	}
	if err := a.RegisterPlugin("p", func(ctx context.Context, m map[string]any) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterPlugin("p", func(ctx context.Context, m map[string]any) (any, error) { return nil, nil }); err == nil {
		t.Error("duplicate plugin accepted")
	}
	if got := a.Plugins(); len(got) != 1 || got[0] != "p" {
		t.Errorf("plugins = %v", got)
	}
	o := NewOrchestrator()
	if err := o.Connect(nil); err == nil {
		t.Error("nil agent accepted")
	}
	if err := o.Connect(a); err != nil {
		t.Fatal(err)
	}
	if err := o.Connect(a); err == nil {
		t.Error("duplicate facility accepted")
	}
	if f := o.Facilities(); len(f) != 1 || f[0] != "x" {
		t.Errorf("facilities = %v", f)
	}
}
