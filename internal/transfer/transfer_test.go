package transfer

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func setup(t *testing.T, opts Options) (*Service, string, string) {
	t.Helper()
	s := NewService(opts)
	srcRoot, dstRoot := t.TempDir(), t.TempDir()
	if _, err := s.RegisterEndpoint("defiant", "ACE Defiant scratch", srcRoot); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterEndpoint("orion", "Frontier Orion", dstRoot); err != nil {
		t.Fatal(err)
	}
	return s, srcRoot, dstRoot
}

func writeFile(t *testing.T, root, rel string, content []byte) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTransferMovesFiles(t *testing.T) {
	s, src, dst := setup(t, Options{VerifyChecksum: true})
	writeFile(t, src, "out/a.nc", []byte("alpha"))
	writeFile(t, src, "out/b.nc", []byte("bravo-bravo"))
	id, err := s.Submit("defiant", "orion", []Item{
		{Src: "out/a.nc", Dst: "in/a.nc"},
		{Src: "out/b.nc", Dst: "in/b.nc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Succeeded || st.FilesDone != 2 || st.BytesDone != 16 {
		t.Fatalf("status %+v", st)
	}
	got, err := os.ReadFile(filepath.Join(dst, "in/b.nc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "bravo-bravo" {
		t.Fatalf("content %q", got)
	}
	if st.Completed.Before(st.Submitted) {
		t.Fatal("completion before submission")
	}
}

func TestTransferMissingSourceFails(t *testing.T) {
	s, _, _ := setup(t, Options{})
	id, err := s.Submit("defiant", "orion", []Item{{Src: "nope.nc", Dst: "x.nc"}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Failed || len(st.Errors) != 1 {
		t.Fatalf("status %+v", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, _, _ := setup(t, Options{})
	if _, err := s.Submit("defiant", "orion", nil); err == nil {
		t.Error("empty items accepted")
	}
	if _, err := s.Submit("defiant", "orion", []Item{{Src: "../etc/passwd", Dst: "x"}}); err == nil {
		t.Error("path traversal accepted")
	}
	if _, err := s.Submit("nowhere", "orion", []Item{{Src: "a", Dst: "b"}}); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := s.RegisterEndpoint("defiant", "dup", t.TempDir()); err == nil {
		t.Error("duplicate endpoint accepted")
	}
}

func TestChecksumRetryRecoversFromCorruption(t *testing.T) {
	// 50% of copies are corrupted; checksum + retries must still land all
	// files intact.
	s, src, dst := setup(t, Options{
		VerifyChecksum: true,
		FailureRate:    0.5,
		RetryLimit:     10,
		Seed:           3,
	})
	content := []byte("the quick brown granule jumps over the lazy archive")
	for _, name := range []string{"a.nc", "b.nc", "c.nc", "d.nc"} {
		writeFile(t, src, name, content)
	}
	id, err := s.SubmitDir("defiant", "orion", ".", "landing")
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Succeeded {
		t.Fatalf("status %+v", st)
	}
	for _, name := range []string{"a.nc", "b.nc", "c.nc", "d.nc"} {
		got, err := os.ReadFile(filepath.Join(dst, "landing", name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(content) {
			t.Fatalf("%s corrupted after checksum-verified transfer", name)
		}
	}
}

func TestCorruptionWithoutVerifyCanLandBadBytes(t *testing.T) {
	// Sanity check on the fault injector itself: without checksums, a
	// 100% corruption rate must land at least one damaged file.
	s, src, dst := setup(t, Options{FailureRate: 1.0, Seed: 7})
	writeFile(t, src, "x.nc", []byte("payload-payload"))
	id, err := s.Submit("defiant", "orion", []Item{{Src: "x.nc", Dst: "x.nc"}})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Wait(context.Background(), id)
	if st.State != Succeeded {
		t.Fatalf("status %+v", st)
	}
	got, err := os.ReadFile(filepath.Join(dst, "x.nc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == "payload-payload" {
		t.Fatal("fault injector did not corrupt")
	}
}

func TestSubmitDirPreservesTree(t *testing.T) {
	s, src, dst := setup(t, Options{VerifyChecksum: true})
	writeFile(t, src, "day1/g1/tiles.nc", []byte("1"))
	writeFile(t, src, "day1/g2/tiles.nc", []byte("22"))
	writeFile(t, src, "day1/readme.txt", []byte("333"))
	id, err := s.SubmitDir("defiant", "orion", "day1", "archive/day1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Succeeded || st.FilesTotal != 3 {
		t.Fatalf("status %+v", st)
	}
	for _, rel := range []string{"archive/day1/g1/tiles.nc", "archive/day1/g2/tiles.nc", "archive/day1/readme.txt"} {
		if _, err := os.Stat(filepath.Join(dst, rel)); err != nil {
			t.Fatalf("missing %s: %v", rel, err)
		}
	}
}

func TestStatusWhileActiveAndUnknownTask(t *testing.T) {
	s, _, _ := setup(t, Options{})
	if _, err := s.Status("task-999999"); err == nil {
		t.Error("unknown task status accepted")
	}
	if _, err := s.Wait(context.Background(), "task-999999"); err == nil {
		t.Error("unknown task wait accepted")
	}
}

func TestWaitRespectsContext(t *testing.T) {
	s, src, _ := setup(t, Options{})
	// Many files to keep the task alive a moment.
	for i := 0; i < 50; i++ {
		writeFile(t, src, filepath.Join("d", string(rune('a'+i%26))+".nc"), make([]byte, 1<<16))
	}
	id, err := s.SubmitDir("defiant", "orion", "d", "d")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Wait(ctx, id); err == nil {
		// The task may legitimately have finished before the cancelled
		// context was observed; accept either outcome but require that a
		// pre-cancelled context cannot hang.
		st, _ := s.Status(id)
		if st.State == Active {
			t.Fatal("cancelled wait returned nil on active task")
		}
	}
	// Drain the background task so TempDir cleanup doesn't race with the
	// copier goroutines.
	if _, err := s.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
}

// Property: transfers preserve content byte-for-byte for arbitrary
// payloads, with checksums on and fault injection active.
func TestTransferIntegrityProperty(t *testing.T) {
	s, src, dst := setup(t, Options{VerifyChecksum: true, FailureRate: 0.3, RetryLimit: 8, Seed: 11})
	count := 0
	prop := func(payload []byte) bool {
		count++
		name := filepath.Join("p", "f"+time.Now().Format("150405.000000000")+"-"+string(rune('a'+count%26))+".bin")
		writeFile(t, src, name, payload)
		id, err := s.Submit("defiant", "orion", []Item{{Src: name, Dst: name}})
		if err != nil {
			return false
		}
		st, err := s.Wait(context.Background(), id)
		if err != nil || st.State != Succeeded {
			return false
		}
		got, err := os.ReadFile(filepath.Join(dst, name))
		if err != nil {
			return false
		}
		return string(got) == string(payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
