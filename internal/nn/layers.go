// Package nn implements the small neural-network stack behind the RICC
// autoencoder: convolutional and dense layers with explicit forward and
// backward passes, the Adam optimizer, mean-squared-error reconstruction
// loss, and the rotation-invariance embedding penalty.
//
// The design is deliberately minimal — a Layer interface over NCHW
// tensors, a Sequential container, no autograd graph — because the paper's
// workflow needs reproducible CPU inference and small-scale training, not
// a general deep-learning framework.
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/eoml/eoml/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.T
	G    *tensor.T
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), G: tensor.New(shape...)}
}

// Layer is a differentiable module. Forward saves whatever it needs to
// compute Backward; layers are therefore stateful and single-stream (one
// forward, then one backward). Backward accumulates parameter gradients
// and returns the gradient with respect to the layer input.
//
// Infer, InferBatch, and InferBatchQ8 are the inference-only passes:
// they save no state, so concurrent calls on the same layer are safe as
// long as each caller brings its own allocator. Infer uses the fused
// small-batch kernels; InferBatch routes convolutions through im2col +
// one blocked GEMM for the whole batch; InferBatchQ8 is InferBatch with
// the GEMM layers running the symmetric int8 kernel (weights quantized
// once per output channel and cached, activations quantized per tensor
// per call) — InferBatch is its accuracy oracle. Scratch and output
// buffers come from the allocator (a nil allocator degrades to plain
// allocation); see infer.go for the buffer ownership rules.
type Layer interface {
	Forward(x *tensor.T) *tensor.T
	Backward(grad *tensor.T) *tensor.T
	Infer(x *tensor.T, a tensor.Allocator) *tensor.T
	InferBatch(x *tensor.T, a tensor.Allocator) *tensor.T
	InferBatchQ8(x *tensor.T, a tensor.Allocator) *tensor.T
	Params() []*Param
	Name() string
}

// Conv2D is a square-kernel convolution over NCHW input, computed via
// im2col + matmul.
type Conv2D struct {
	label string
	geom  tensor.ConvGeom
	w     *Param // [InC*K*K, OutC] (matmul layout)
	b     *Param // [OutC]
	inN   int
	cols  *tensor.T // saved im2col matrix for backward

	// qmu guards the lazily quantized int8 weights. Forward (the
	// training path) invalidates the cache, so Q8 inference after a
	// training round requantizes the stepped weights.
	qmu sync.Mutex
	qw  *tensor.QWeights
}

// NewConv2D builds a convolution layer for a fixed input geometry, with
// He-style weight initialization from rng.
func NewConv2D(label string, inC, outC, kernel, stride, pad, inH, inW int, rng *rand.Rand) (*Conv2D, error) {
	geom, err := tensor.NewConvGeom(inC, outC, kernel, stride, pad, inH, inW)
	if err != nil {
		return nil, err
	}
	l := &Conv2D{
		label: label,
		geom:  geom,
		w:     newParam(label+".w", inC*kernel*kernel, outC),
		b:     newParam(label+".b", outC),
	}
	fanIn := float64(inC * kernel * kernel)
	l.w.W.Randn(rng, math.Sqrt(2/fanIn))
	return l, nil
}

// Name returns the layer label.
func (l *Conv2D) Name() string { return l.label }

// Params returns the trainable parameters.
func (l *Conv2D) Params() []*Param { return []*Param{l.w, l.b} }

// Geom exposes the convolution geometry (used to chain layer shapes).
func (l *Conv2D) Geom() tensor.ConvGeom { return l.geom }

// Forward computes the convolution.
func (l *Conv2D) Forward(x *tensor.T) *tensor.T {
	if len(x.Shape) != 4 || x.Shape[1] != l.geom.InC || x.Shape[2] != l.geom.InH || x.Shape[3] != l.geom.InW {
		panic(fmt.Sprintf("nn: %s: input %v, want [N %d %d %d]", l.label, x.Shape, l.geom.InC, l.geom.InH, l.geom.InW))
	}
	l.invalidateQuant()
	l.inN = x.Shape[0]
	// Im2ColInto reuses the previous batch's matrix when the shape is
	// unchanged, so steady-state training does not regrow the heap.
	l.cols = tensor.Im2ColInto(x, l.geom, l.cols)
	prod := tensor.MatMul(l.cols, l.w.W) // [N*OH*OW, OutC]
	out := tensor.New(l.inN, l.geom.OutC, l.geom.OutH, l.geom.OutW)
	plane := l.geom.OutH * l.geom.OutW
	for b := 0; b < l.inN; b++ {
		for p := 0; p < plane; p++ {
			row := prod.Data[(b*plane+p)*l.geom.OutC:]
			for oc := 0; oc < l.geom.OutC; oc++ {
				out.Data[(b*l.geom.OutC+oc)*plane+p] = row[oc] + l.b.W.Data[oc]
			}
		}
	}
	return out
}

// Backward accumulates dW, dB and returns dX.
func (l *Conv2D) Backward(grad *tensor.T) *tensor.T {
	plane := l.geom.OutH * l.geom.OutW
	// Rearrange grad from NCHW to rows matching the im2col product.
	gRows := tensor.New(l.inN*plane, l.geom.OutC)
	for b := 0; b < l.inN; b++ {
		for p := 0; p < plane; p++ {
			row := gRows.Data[(b*plane+p)*l.geom.OutC:]
			for oc := 0; oc < l.geom.OutC; oc++ {
				row[oc] = grad.Data[(b*l.geom.OutC+oc)*plane+p]
			}
		}
	}
	// dW = colsᵀ · gRows
	l.w.G.AddInPlace(tensor.MatMulTA(l.cols, gRows))
	// dB = column sums of gRows
	for r := 0; r < gRows.Shape[0]; r++ {
		row := gRows.Data[r*l.geom.OutC:]
		for oc := 0; oc < l.geom.OutC; oc++ {
			l.b.G.Data[oc] += row[oc]
		}
	}
	// dCols = gRows · Wᵀ: MatMulTB(A [m,k], B [n,k]) computes A·Bᵀ, and
	// W stored as [InC*K*K, OutC] is exactly the [n,k] operand needed.
	dCols := tensor.MatMulTB(gRows, l.w.W)
	return tensor.Col2Im(dCols, l.inN, l.geom)
}

// Dense is a fully connected layer over [N, In] input.
type Dense struct {
	label string
	in    int
	out   int
	w     *Param // [In, Out]
	b     *Param // [Out]
	x     *tensor.T

	// See Conv2D: lazily quantized weights, invalidated by Forward.
	qmu sync.Mutex
	qw  *tensor.QWeights
}

// NewDense builds a dense layer with Xavier initialization.
func NewDense(label string, in, out int, rng *rand.Rand) *Dense {
	l := &Dense{label: label, in: in, out: out, w: newParam(label+".w", in, out), b: newParam(label+".b", out)}
	l.w.W.Randn(rng, math.Sqrt(1/float64(in)))
	return l
}

// Name returns the layer label.
func (l *Dense) Name() string { return l.label }

// Params returns the trainable parameters.
func (l *Dense) Params() []*Param { return []*Param{l.w, l.b} }

// Forward computes x·W + b.
func (l *Dense) Forward(x *tensor.T) *tensor.T {
	if len(x.Shape) != 2 || x.Shape[1] != l.in {
		panic(fmt.Sprintf("nn: %s: input %v, want [N %d]", l.label, x.Shape, l.in))
	}
	l.invalidateQuant()
	l.x = x
	out := tensor.MatMul(x, l.w.W)
	for r := 0; r < out.Shape[0]; r++ {
		row := out.Data[r*l.out:]
		for j := 0; j < l.out; j++ {
			row[j] += l.b.W.Data[j]
		}
	}
	return out
}

// Backward accumulates gradients and returns dX.
func (l *Dense) Backward(grad *tensor.T) *tensor.T {
	l.w.G.AddInPlace(tensor.MatMulTA(l.x, grad))
	for r := 0; r < grad.Shape[0]; r++ {
		row := grad.Data[r*l.out:]
		for j := 0; j < l.out; j++ {
			l.b.G.Data[j] += row[j]
		}
	}
	// dX = grad · Wᵀ; W stored [In, Out] is the [n,k] operand of MatMulTB.
	return tensor.MatMulTB(grad, l.w.W)
}

// LeakyReLU applies max(x, alpha*x) elementwise.
type LeakyReLU struct {
	label string
	alpha float32
	x     *tensor.T
}

// NewLeakyReLU builds the activation with the given negative slope.
func NewLeakyReLU(label string, alpha float32) *LeakyReLU {
	return &LeakyReLU{label: label, alpha: alpha}
}

// Name returns the layer label.
func (l *LeakyReLU) Name() string { return l.label }

// Params returns nil; activations are parameter-free.
func (l *LeakyReLU) Params() []*Param { return nil }

// Forward applies the activation.
func (l *LeakyReLU) Forward(x *tensor.T) *tensor.T {
	l.x = x
	out := x.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = v * l.alpha
		}
	}
	return out
}

// Backward gates the incoming gradient.
func (l *LeakyReLU) Backward(grad *tensor.T) *tensor.T {
	out := grad.Clone()
	for i, v := range l.x.Data {
		if v < 0 {
			out.Data[i] *= l.alpha
		}
	}
	return out
}

// Sigmoid squashes values into (0, 1); used on the decoder output since
// tile radiances are normalized to [0, 1].
type Sigmoid struct {
	label string
	y     *tensor.T
}

// NewSigmoid builds the activation.
func NewSigmoid(label string) *Sigmoid { return &Sigmoid{label: label} }

// Name returns the layer label.
func (l *Sigmoid) Name() string { return l.label }

// Params returns nil.
func (l *Sigmoid) Params() []*Param { return nil }

// Forward applies the logistic function.
func (l *Sigmoid) Forward(x *tensor.T) *tensor.T {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	l.y = out
	return out
}

// Backward multiplies by y(1-y).
func (l *Sigmoid) Backward(grad *tensor.T) *tensor.T {
	out := grad.Clone()
	for i, y := range l.y.Data {
		out.Data[i] *= y * (1 - y)
	}
	return out
}

// Flatten reshapes [N, C, H, W] to [N, C*H*W].
type Flatten struct {
	label string
	shape []int
}

// NewFlatten builds the reshape layer.
func NewFlatten(label string) *Flatten { return &Flatten{label: label} }

// Name returns the layer label.
func (l *Flatten) Name() string { return l.label }

// Params returns nil.
func (l *Flatten) Params() []*Param { return nil }

// Forward flattens all but the batch dimension.
func (l *Flatten) Forward(x *tensor.T) *tensor.T {
	l.shape = append([]int(nil), x.Shape...)
	return x.Reshape(x.Shape[0], x.Len()/x.Shape[0])
}

// Backward restores the saved shape.
func (l *Flatten) Backward(grad *tensor.T) *tensor.T {
	return grad.Reshape(l.shape...)
}

// Reshape4D reshapes [N, D] to [N, C, H, W].
type Reshape4D struct {
	label   string
	c, h, w int
}

// NewReshape4D builds the reshape layer.
func NewReshape4D(label string, c, h, w int) *Reshape4D {
	return &Reshape4D{label: label, c: c, h: h, w: w}
}

// Name returns the layer label.
func (l *Reshape4D) Name() string { return l.label }

// Params returns nil.
func (l *Reshape4D) Params() []*Param { return nil }

// Forward reshapes to NCHW.
func (l *Reshape4D) Forward(x *tensor.T) *tensor.T {
	return x.Reshape(x.Shape[0], l.c, l.h, l.w)
}

// Backward flattens back.
func (l *Reshape4D) Backward(grad *tensor.T) *tensor.T {
	return grad.Reshape(grad.Shape[0], l.c*l.h*l.w)
}

// Upsample2x doubles spatial resolution with nearest-neighbor copies; the
// decoder uses it in place of transposed convolutions.
type Upsample2x struct {
	label string
}

// NewUpsample2x builds the layer.
func NewUpsample2x(label string) *Upsample2x { return &Upsample2x{label: label} }

// Name returns the layer label.
func (l *Upsample2x) Name() string { return l.label }

// Params returns nil.
func (l *Upsample2x) Params() []*Param { return nil }

// Forward upsamples.
func (l *Upsample2x) Forward(x *tensor.T) *tensor.T { return tensor.Upsample2x(x) }

// Backward sum-pools the gradient (the exact adjoint).
func (l *Upsample2x) Backward(grad *tensor.T) *tensor.T { return tensor.Downsample2xSum(grad) }

// Sequential chains layers.
type Sequential struct {
	label  string
	Layers []Layer
}

// NewSequential builds a container.
func NewSequential(label string, layers ...Layer) *Sequential {
	return &Sequential{label: label, Layers: layers}
}

// Name returns the container label.
func (s *Sequential) Name() string { return s.label }

// Params concatenates all layer parameters.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.T) *tensor.T {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs all layers in reverse.
func (s *Sequential) Backward(grad *tensor.T) *tensor.T {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// ZeroGrad clears all parameter gradients.
func ZeroGrad(params []*Param) {
	for _, p := range params {
		p.G.Zero()
	}
}
