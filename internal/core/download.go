package core

import (
	"context"
	"fmt"

	"github.com/eoml/eoml/internal/compute"
	"github.com/eoml/eoml/internal/laads"
	"github.com/eoml/eoml/internal/modis"
)

// The download stage runs through the Globus-Compute-like fabric, exactly
// as the paper describes it: "we implemented a remotely executable Globus
// Compute function ... downloads for each time span can be distributed
// across multiple Compute workers to maximize bandwidth utilization. If a
// worker completes its download task and additional time spans are
// queued, it automatically begins the next task."
//
// The registered function downloads one product file; the endpoint's
// worker pool provides the fan-out and graceful drain.

// downloadFunctionName is the registry key of the download function.
const downloadFunctionName = "eoml.download_granule"

// registerDownloadFunction installs the download function into a compute
// registry, bound to this pipeline's archive credentials and data
// directory. runCtx is the run's lifetime: compute workers execute
// tasks under their own endpoint context, so without this bridge a
// canceled run would leave workers blocked in quota waits or slow
// fetches until the endpoint's own timeout.
func (p *Run) registerDownloadFunction(runCtx context.Context, reg *compute.Registry) error {
	client := laads.NewClient(p.cfg.ArchiveURL, p.cfg.ArchiveToken)
	client.Quota = p.quota
	client.Instrument(p.metrics)
	return reg.Register(downloadFunctionName, func(ctx context.Context, args map[string]any) (any, error) {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		stop := context.AfterFunc(runCtx, cancel)
		defer stop()
		product, _ := args["product"].(string)
		name, _ := args["name"].(string)
		year, yok := asInt(args["year"])
		doy, dok := asInt(args["doy"])
		if product == "" || name == "" || !yok || !dok {
			return nil, fmt.Errorf("core: download function needs product, name, year, doy")
		}
		prod, err := modis.ParseProduct(product)
		if err != nil {
			return nil, err
		}
		res, err := client.Download(ctx, prod, year, doy, name, p.cfg.DataDir)
		if err != nil {
			return nil, err
		}
		return res.Bytes, nil
	})
}

// asInt accepts the int/int64/float64 encodings a task argument may carry
// (float64 after a JSON hop, int in-process).
func asInt(v any) (int, bool) {
	switch t := v.(type) {
	case int:
		return t, true
	case int64:
		return int(t), true
	case float64:
		return int(t), true
	}
	return 0, false
}

// downloadViaCompute fans the granule file list out over a compute
// endpoint and returns (files, totalBytes).
func (p *Run) downloadViaCompute(ctx context.Context, granules []modis.GranuleID, onWorkerChange func(int)) (int, int64, error) {
	reg := compute.NewRegistry()
	if err := p.registerDownloadFunction(ctx, reg); err != nil {
		return 0, 0, err
	}
	ep, err := compute.NewEndpoint("dtn", reg, compute.EndpointConfig{
		Workers:        p.cfg.DownloadWorkers,
		OnWorkerChange: onWorkerChange,
	})
	if err != nil {
		return 0, 0, err
	}
	ep.Start()
	defer ep.Stop()

	var argSets []map[string]any
	for _, g := range granules {
		for _, prod := range p.cfg.Products() {
			argSets = append(argSets, map[string]any{
				"product": prod.ShortName(),
				"name":    modis.FileName(prod, g),
				"year":    g.Year,
				"doy":     g.DOY,
			})
		}
	}
	results, err := ep.Map(ctx, downloadFunctionName, argSets)
	if err != nil {
		return 0, 0, fmt.Errorf("core: download stage: %w", err)
	}
	var total int64
	for _, r := range results {
		if n, ok := r.(int64); ok {
			total += n
		}
	}
	return len(results), total, nil
}
