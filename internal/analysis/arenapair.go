package analysis

import (
	"go/ast"
	"go/types"
)

// ArenaPair keeps the tensor arenas honest: an arena only amortizes
// allocations (PR 1's 305→15 allocs/op win) if every Get is returned
// with a Put. A function that Gets and never Puts silently regresses the
// hot path back to the allocator. The check is per function declaration
// and covers both ownership classes the tensor package hands out:
//
//   - Tensors: Get/Put on *tensor.Arena, *tensor.LocalArena, or the
//     tensor.Allocator interface they implement. A function calling Get
//     must either call Put (directly, deferred, or in a nested literal)
//     or visibly transfer ownership by returning the gotten tensor — the
//     Layer.Infer contract, where the caller recycles.
//   - Shards: Acquire/Release on *tensor.ShardedArena. A function that
//     checks a LocalArena out of the pool must check it back in, or
//     return it to the caller.
//   - Int8 scratch: GetI8/PutI8 on the same allocator types — the
//     quantized inference path's activation and im2col buffers. They
//     form their own ownership class: a PutI8 does not excuse a leaked
//     float tensor, nor vice versa.
//
// Any other transfer (storing the tensor in a field, handing it to a
// goroutine) carries an ignore directive naming the new owner.
var ArenaPair = &Analyzer{
	Name: "arenapair",
	Doc:  "a function that calls Get on a tensor arena (Arena, LocalArena, or the Allocator interface) must Put the tensor back, and one that calls ShardedArena.Acquire must Release the shard — or return it to the caller, or document the ownership transfer with an ignore directive",
	Run:  runArenaPair,
}

const tensorPkg = "github.com/eoml/eoml/internal/tensor"

// allocTypes are the receiver types whose Get/Put form one ownership
// class: a tensor taken from any of them must go back through a Put.
var allocTypes = []string{"Arena", "LocalArena", "Allocator"}

func runArenaPair(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkArenaPairs(pass, fd)
			}
		}
	}
}

func checkArenaPairs(pass *Pass, fd *ast.FuncDecl) {
	var gets, getI8s, acquires []*ast.CallExpr
	puts, putI8s, releases := 0, 0, 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		switch {
		case isAllocMethod(fn, "Get"):
			gets = append(gets, call)
		case isAllocMethod(fn, "Put"):
			puts++
		case isAllocMethod(fn, "GetI8"):
			getI8s = append(getI8s, call)
		case isAllocMethod(fn, "PutI8"):
			putI8s++
		case isMethodOn(fn, tensorPkg, "ShardedArena", "Acquire"):
			acquires = append(acquires, call)
		case isMethodOn(fn, tensorPkg, "ShardedArena", "Release"):
			releases++
		}
		return true
	})
	// Any Put (or Release) in the function is taken as evidence of pairing
	// discipline; per-value matching is the reviewer's job, count matching
	// is ours.
	var parents map[ast.Node]ast.Node
	flag := func(calls []*ast.CallExpr, msg string) {
		if parents == nil {
			parents = parentMap(fd.Body)
		}
		for _, call := range calls {
			if returnsOwnership(pass, parents, fd, call) {
				continue
			}
			pass.Reportf(call.Pos(), msg, fd.Name.Name)
		}
	}
	if len(gets) > 0 && puts == 0 {
		flag(gets, "tensor arena Get without any Put in %s; the tensor never returns to the arena")
	}
	if len(getI8s) > 0 && putI8s == 0 {
		flag(getI8s, "tensor arena GetI8 without any PutI8 in %s; the int8 scratch never returns to the arena")
	}
	if len(acquires) > 0 && releases == 0 {
		flag(acquires, "ShardedArena Acquire without any Release in %s; the shard never returns to the checkout pool")
	}
}

// isAllocMethod reports whether fn is the named method on any of the
// tensor allocator types, including calls through the Allocator
// interface (whose method set the concrete arenas satisfy).
func isAllocMethod(fn *types.Func, name string) bool {
	for _, typ := range allocTypes {
		if isMethodOn(fn, tensorPkg, typ, name) {
			return true
		}
	}
	return false
}

// returnsOwnership reports whether the Get/Acquire call's result is
// returned by the function, directly or through the variable it is
// assigned to.
func returnsOwnership(pass *Pass, parents map[ast.Node]ast.Node, fd *ast.FuncDecl, get *ast.CallExpr) bool {
	switch p := parents[get].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		if len(p.Lhs) != 1 || len(p.Rhs) != 1 {
			return false
		}
		id, ok := p.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return false
		}
		returned := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			// The returned expression must BE the tensor variable;
			// returning a field or element of it still leaks the buffer.
			for _, res := range ret.Results {
				if use, ok := ast.Unparen(res).(*ast.Ident); ok && pass.Info.ObjectOf(use) == obj {
					returned = true
				}
			}
			return !returned
		})
		return returned
	}
	return false
}
