package laads

import (
	"context"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/metrics"
)

func TestQuotaRateLimits(t *testing.T) {
	pool := NewQuotaPool(50, 1) // one token per 20ms, no burst headroom
	q := pool.Tenant("acme")
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := q.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// First token rides the burst; the next two wait ~20ms each.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("3 acquires at 50 rps took only %v", elapsed)
	}
}

func TestQuotaSharedAcrossRunsOfOneTenant(t *testing.T) {
	pool := NewQuotaPool(50, 1)
	a, b := pool.Tenant("acme"), pool.Tenant("acme")
	if a != b {
		t.Fatal("same tenant got distinct buckets")
	}
	if pool.Tenant("other") == a {
		t.Fatal("distinct tenants share a bucket")
	}
}

func TestQuotaAcquireCancellable(t *testing.T) {
	pool := NewQuotaPool(0.1, 1) // 10s per token after the burst
	q := pool.Tenant("slow")
	if err := q.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("cancelled acquire = %v, want deadline exceeded", err)
	}
}

func TestQuotaNilIsNoOp(t *testing.T) {
	var pool *QuotaPool
	if q := pool.Tenant("anyone"); q != nil {
		t.Fatal("nil pool handed out a quota")
	}
	if NewQuotaPool(0, 4) != nil {
		t.Fatal("disabled pool is non-nil")
	}
	var q *Quota
	if err := q.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaInstrument(t *testing.T) {
	pool := NewQuotaPool(1000, 8)
	reg := metrics.NewRegistry()
	pool.Instrument(reg)
	q := pool.Tenant("acme")
	if err := q.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fam := range reg.Snapshot() {
		if fam.Name == "eoml_laads_quota_wait_seconds" {
			found = true
			if len(fam.Series) != 1 || fam.Series[0].Labels[0] != metrics.L("tenant", "acme") {
				t.Fatalf("quota series = %+v", fam.Series)
			}
			if fam.Series[0].Histogram.Count != 1 {
				t.Fatalf("wait observations = %d, want 1", fam.Series[0].Histogram.Count)
			}
		}
	}
	if !found {
		t.Fatal("quota wait histogram not registered")
	}
}
