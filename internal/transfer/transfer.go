// Package transfer is a Globus-Transfer-like data movement service:
// named endpoints rooted at directories, asynchronous transfer tasks with
// per-file checksum verification, bounded parallelism, retry, and fault
// injection for tests.
//
// In the paper, stage 5 ("Shipment") submits a Globus Transfer moving the
// labeled NetCDF files from the ACE Defiant filesystem to Frontier's
// Orion Lustre filesystem and polls the task until completion. This
// package reproduces that control flow: submit returns a task ID
// immediately, the transfer runs in the background, and Wait/Status
// expose the same lifecycle (ACTIVE → SUCCEEDED/FAILED).
package transfer

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// State is a transfer task lifecycle state.
type State string

// Task states, named as in the Globus Transfer API.
const (
	Active    State = "ACTIVE"
	Succeeded State = "SUCCEEDED"
	Failed    State = "FAILED"
)

// Endpoint is a named filesystem root, like a Globus collection.
type Endpoint struct {
	ID   string
	Name string
	Root string
}

// Options tunes the service.
type Options struct {
	// Parallelism is the number of concurrent file copies per task.
	Parallelism int
	// RetryLimit is per-file retry count after checksum or I/O failure.
	RetryLimit int
	// VerifyChecksum enables CRC32 verification of every copied file.
	VerifyChecksum bool
	// FailureRate injects per-copy corruption with the given probability
	// (testing only; requires VerifyChecksum to be recoverable).
	FailureRate float64
	// Seed drives fault injection.
	Seed int64
}

// Item is one file to move, with paths relative to the endpoint roots.
type Item struct {
	Src string
	Dst string
}

// TaskStatus is a point-in-time snapshot of a transfer task.
type TaskStatus struct {
	ID         string
	State      State
	FilesTotal int
	FilesDone  int
	BytesDone  int64
	Errors     []string
	Submitted  time.Time
	Completed  time.Time
}

// Service manages endpoints and transfer tasks.
type Service struct {
	opts Options

	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[string]*Endpoint
	tasks     map[string]*task
	nextID    int
}

type task struct {
	status TaskStatus
	done   chan struct{}
}

// NewService builds a transfer service.
func NewService(opts Options) *Service {
	if opts.Parallelism <= 0 {
		opts.Parallelism = 4
	}
	return &Service{
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		endpoints: map[string]*Endpoint{},
		tasks:     map[string]*task{},
	}
}

// RegisterEndpoint declares a filesystem root under a stable ID.
func (s *Service) RegisterEndpoint(id, name, root string) (*Endpoint, error) {
	if id == "" || root == "" {
		return nil, fmt.Errorf("transfer: endpoint needs id and root")
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.endpoints[id]; dup {
		return nil, fmt.Errorf("transfer: duplicate endpoint %q", id)
	}
	ep := &Endpoint{ID: id, Name: name, Root: abs}
	s.endpoints[id] = ep
	return ep, nil
}

// Endpoint looks up a registered endpoint.
func (s *Service) Endpoint(id string) (*Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep, ok := s.endpoints[id]
	if !ok {
		return nil, fmt.Errorf("transfer: no endpoint %q", id)
	}
	return ep, nil
}

// Submit starts an asynchronous transfer of items from srcEP to dstEP and
// returns the task ID.
func (s *Service) Submit(srcEP, dstEP string, items []Item) (string, error) {
	src, err := s.Endpoint(srcEP)
	if err != nil {
		return "", err
	}
	dst, err := s.Endpoint(dstEP)
	if err != nil {
		return "", err
	}
	if len(items) == 0 {
		return "", fmt.Errorf("transfer: empty item list")
	}
	for _, it := range items {
		if it.Src == "" || it.Dst == "" || strings.Contains(it.Src, "..") || strings.Contains(it.Dst, "..") {
			return "", fmt.Errorf("transfer: invalid item %+v", it)
		}
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("task-%06d", s.nextID)
	tk := &task{
		status: TaskStatus{ID: id, State: Active, FilesTotal: len(items), Submitted: time.Now()},
		done:   make(chan struct{}),
	}
	s.tasks[id] = tk
	s.mu.Unlock()

	go s.run(tk, src, dst, items)
	return id, nil
}

// SubmitDir transfers every regular file under srcDir (relative to the
// source endpoint root) into dstDir on the destination endpoint,
// preserving relative paths.
func (s *Service) SubmitDir(srcEP, dstEP, srcDir, dstDir string) (string, error) {
	src, err := s.Endpoint(srcEP)
	if err != nil {
		return "", err
	}
	base := filepath.Join(src.Root, srcDir)
	var items []Item
	err = filepath.Walk(base, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(base, path)
		if err != nil {
			return err
		}
		items = append(items, Item{
			Src: filepath.Join(srcDir, rel),
			Dst: filepath.Join(dstDir, rel),
		})
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Src < items[j].Src })
	return s.Submit(srcEP, dstEP, items)
}

//eomlvet:ignore ctxflow Submit is a fire-and-forget queue API (Wait(ctx) is the cancellable edge); the flagged semaphore send is bounded by local file copies draining the other slots
func (s *Service) run(tk *task, src, dst *Endpoint, items []Item) {
	sem := make(chan struct{}, s.opts.Parallelism)
	var wg sync.WaitGroup
	for _, it := range items {
		it := it
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			n, err := s.copyWithRetry(
				filepath.Join(src.Root, it.Src),
				filepath.Join(dst.Root, it.Dst),
			)
			s.mu.Lock()
			if err != nil {
				tk.status.Errors = append(tk.status.Errors, fmt.Sprintf("%s: %v", it.Src, err))
			} else {
				tk.status.FilesDone++
				tk.status.BytesDone += n
			}
			s.mu.Unlock()
		}()
	}
	wg.Wait()
	s.mu.Lock()
	if len(tk.status.Errors) > 0 {
		tk.status.State = Failed
	} else {
		tk.status.State = Succeeded
	}
	tk.status.Completed = time.Now()
	s.mu.Unlock()
	close(tk.done)
}

func (s *Service) copyWithRetry(src, dst string) (int64, error) {
	var lastErr error
	for attempt := 0; attempt <= s.opts.RetryLimit; attempt++ {
		n, err := s.copyOnce(src, dst)
		if err == nil {
			return n, nil
		}
		lastErr = err
	}
	return 0, fmt.Errorf("after %d attempts: %w", s.opts.RetryLimit+1, lastErr)
}

func (s *Service) copyOnce(src, dst string) (int64, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return 0, err
	}
	tmp := dst + ".transferring"
	out, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	srcCRC := crc32.NewIEEE()
	n, err := io.Copy(io.MultiWriter(out, srcCRC), in)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}

	// Fault injection: corrupt one byte of the copy.
	s.mu.Lock()
	corrupt := s.opts.FailureRate > 0 && s.rng.Float64() < s.opts.FailureRate
	var corruptAt int64
	if corrupt && n > 0 {
		corruptAt = s.rng.Int63n(n)
	}
	s.mu.Unlock()
	if corrupt && n > 0 {
		f, err := os.OpenFile(tmp, os.O_RDWR, 0)
		if err == nil {
			var b [1]byte
			if _, err := f.ReadAt(b[:], corruptAt); err == nil {
				b[0] ^= 0xFF
				f.WriteAt(b[:], corruptAt)
			}
			_ = f.Close() // fault injection is best-effort by design
		}
	}

	if s.opts.VerifyChecksum {
		got, err := fileCRC(tmp)
		if err != nil {
			os.Remove(tmp)
			return 0, err
		}
		if got != srcCRC.Sum32() {
			os.Remove(tmp)
			return 0, fmt.Errorf("checksum mismatch copying %s", filepath.Base(src))
		}
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, nil
}

func fileCRC(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

// Status snapshots a task.
func (s *Service) Status(id string) (TaskStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tk, ok := s.tasks[id]
	if !ok {
		return TaskStatus{}, fmt.Errorf("transfer: no task %q", id)
	}
	st := tk.status
	st.Errors = append([]string(nil), tk.status.Errors...)
	return st, nil
}

// Wait blocks until the task completes or the context is cancelled.
func (s *Service) Wait(ctx context.Context, id string) (TaskStatus, error) {
	s.mu.Lock()
	tk, ok := s.tasks[id]
	s.mu.Unlock()
	if !ok {
		return TaskStatus{}, fmt.Errorf("transfer: no task %q", id)
	}
	select {
	case <-tk.done:
		return s.Status(id)
	case <-ctx.Done():
		return TaskStatus{}, ctx.Err()
	}
}
