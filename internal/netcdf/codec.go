package netcdf

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// magic bytes for CDF-1 (classic format).
var magic = []byte{'C', 'D', 'F', 1}

// pad4 returns n rounded up to a multiple of 4.
func pad4(n int) int { return (n + 3) &^ 3 }

// Encode renders the dataset in classic (CDF-1) format.
func Encode(f *File) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(magic)
	putU32(&buf, 0) // numrecs: no record dimension

	// dim_list
	if len(f.dims) == 0 {
		putU32(&buf, 0)
		putU32(&buf, 0)
	} else {
		putU32(&buf, tagDimension)
		putU32(&buf, uint32(len(f.dims)))
		for _, d := range f.dims {
			putName(&buf, d.Name)
			putU32(&buf, uint32(d.Len))
		}
	}

	// gatt_list
	if err := putAttrs(&buf, f.Attrs); err != nil {
		return nil, err
	}

	// var_list: encode twice; the first pass with zero offsets sizes the
	// header so the second pass can fill in real data offsets.
	offsets := make([]uint32, len(f.vars))
	header := encodeVarList(f, offsets)
	headerLen := buf.Len() + len(header)
	pos := pad4(headerLen)
	for i, v := range f.vars {
		offsets[i] = uint32(pos)
		pos += pad4(len(v.data))
		if pos < 0 || pos > math.MaxUint32 {
			return nil, fmt.Errorf("netcdf: file exceeds CDF-1 2 GiB offset limit")
		}
	}
	header = encodeVarList(f, offsets)
	buf.Write(header)
	for buf.Len() < pad4(headerLen) {
		buf.WriteByte(0)
	}
	for _, v := range f.vars {
		buf.Write(v.data)
		for p := len(v.data); p%4 != 0; p++ {
			buf.WriteByte(0)
		}
	}
	return buf.Bytes(), nil
}

func encodeVarList(f *File, offsets []uint32) []byte {
	var buf bytes.Buffer
	if len(f.vars) == 0 {
		putU32(&buf, 0)
		putU32(&buf, 0)
		return buf.Bytes()
	}
	putU32(&buf, tagVariable)
	putU32(&buf, uint32(len(f.vars)))
	for i, v := range f.vars {
		putName(&buf, v.Name)
		putU32(&buf, uint32(len(v.Dims)))
		for _, dn := range v.Dims {
			putU32(&buf, uint32(f.dimIdx[dn]))
		}
		// Attribute encoding cannot fail here: values were validated on Set.
		_ = putAttrs(&buf, v.Attrs)
		putU32(&buf, uint32(v.Type))
		putU32(&buf, uint32(pad4(len(v.data)))) // vsize includes padding
		putU32(&buf, offsets[i])                // begin
	}
	return buf.Bytes()
}

func putAttrs(buf *bytes.Buffer, a *Attrs) error {
	if a == nil || a.Len() == 0 {
		putU32(buf, 0)
		putU32(buf, 0)
		return nil
	}
	putU32(buf, tagAttribute)
	putU32(buf, uint32(a.Len()))
	for _, name := range a.names {
		v := a.values[name]
		putName(buf, name)
		putU32(buf, uint32(v.typ))
		putU32(buf, uint32(v.nelems()))
		start := buf.Len()
		switch v.typ {
		case Char:
			buf.WriteString(v.text)
		case Byte:
			for _, x := range v.i8 {
				buf.WriteByte(byte(x))
			}
		case Short:
			for _, x := range v.i16 {
				putU16(buf, uint16(x))
			}
		case Int:
			for _, x := range v.i32 {
				putU32(buf, uint32(x))
			}
		case Float:
			for _, x := range v.f32 {
				putU32(buf, math.Float32bits(x))
			}
		case Double:
			for _, x := range v.f64 {
				putU64(buf, math.Float64bits(x))
			}
		default:
			return fmt.Errorf("netcdf: attribute %q has invalid type %v", name, v.typ)
		}
		for (buf.Len()-start)%4 != 0 {
			buf.WriteByte(0)
		}
	}
	return nil
}

func putU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func putU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func putU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func putName(buf *bytes.Buffer, name string) {
	putU32(buf, uint32(len(name)))
	buf.WriteString(name)
	for p := len(name); p%4 != 0; p++ {
		buf.WriteByte(0)
	}
}

// Decode parses a classic-format NetCDF byte stream.
func Decode(data []byte) (*File, error) {
	d := &reader{buf: data}
	head, err := d.take(4)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(head[:3], magic[:3]) {
		return nil, fmt.Errorf("netcdf: bad magic %q", head[:3])
	}
	if head[3] != 1 {
		return nil, fmt.Errorf("netcdf: unsupported format version %d (only CDF-1 classic)", head[3])
	}
	numrecs, err := d.u32()
	if err != nil {
		return nil, err
	}
	if numrecs != 0 {
		return nil, fmt.Errorf("netcdf: record dimensions unsupported (numrecs=%d)", numrecs)
	}

	f := New()

	// dim_list
	tag, count, err := d.listHeader()
	if err != nil {
		return nil, err
	}
	if count > 0 && tag != tagDimension {
		return nil, fmt.Errorf("netcdf: expected dimension list, found tag %#x", tag)
	}
	for i := uint32(0); i < count; i++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		length, err := d.u32()
		if err != nil {
			return nil, err
		}
		if length == 0 {
			return nil, fmt.Errorf("netcdf: record dimension %q unsupported", name)
		}
		if err := f.AddDim(name, int(length)); err != nil {
			return nil, err
		}
	}

	// gatt_list
	if err := d.readAttrs(f.Attrs); err != nil {
		return nil, err
	}

	// var_list
	tag, count, err = d.listHeader()
	if err != nil {
		return nil, err
	}
	if count > 0 && tag != tagVariable {
		return nil, fmt.Errorf("netcdf: expected variable list, found tag %#x", tag)
	}
	type varHeader struct {
		v     *Var
		begin uint32
		size  uint32
	}
	// Cap the preallocation: count is untrusted input, and each header
	// costs at least 16 bytes of file, so a huge claimed count fails the
	// read loop long before it needs that capacity.
	prealloc := count
	if prealloc > 1024 {
		prealloc = 1024
	}
	headers := make([]varHeader, 0, prealloc)
	for i := uint32(0); i < count; i++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		ndims, err := d.u32()
		if err != nil {
			return nil, err
		}
		if ndims > 64 {
			return nil, fmt.Errorf("netcdf: variable %q has implausible rank %d", name, ndims)
		}
		dims := make([]string, ndims)
		for j := range dims {
			id, err := d.u32()
			if err != nil {
				return nil, err
			}
			if int(id) >= len(f.dims) {
				return nil, fmt.Errorf("netcdf: variable %q references dimension %d of %d", name, id, len(f.dims))
			}
			dims[j] = f.dims[id].Name
		}
		attrs := NewAttrs()
		if err := d.readAttrs(attrs); err != nil {
			return nil, err
		}
		typeCode, err := d.u32()
		if err != nil {
			return nil, err
		}
		t := Type(typeCode)
		if t.Size() == 0 {
			return nil, fmt.Errorf("netcdf: variable %q has unknown type %d", name, typeCode)
		}
		vsize, err := d.u32()
		if err != nil {
			return nil, err
		}
		begin, err := d.u32()
		if err != nil {
			return nil, err
		}
		headers = append(headers, varHeader{
			v:     &Var{Name: name, Type: t, Dims: dims, Attrs: attrs},
			begin: begin,
			size:  vsize,
		})
	}
	for _, h := range headers {
		elems, err := f.shape(h.v.Dims)
		if err != nil {
			return nil, fmt.Errorf("netcdf: variable %q: %w", h.v.Name, err)
		}
		nbytes := elems * h.v.Type.Size()
		if int(h.size) != pad4(nbytes) {
			return nil, fmt.Errorf("netcdf: variable %q: vsize %d, want %d", h.v.Name, h.size, pad4(nbytes))
		}
		end := int(h.begin) + nbytes
		if int(h.begin) < 0 || end > len(data) {
			return nil, fmt.Errorf("netcdf: variable %q data [%d,%d) outside file of %d bytes", h.v.Name, h.begin, end, len(data))
		}
		h.v.data = append([]byte(nil), data[h.begin:end]...)
		if err := f.addVar(h.v, elems, nbytes); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (d *reader) readAttrs(a *Attrs) error {
	tag, count, err := d.listHeader()
	if err != nil {
		return err
	}
	if count > 0 && tag != tagAttribute {
		return fmt.Errorf("netcdf: expected attribute list, found tag %#x", tag)
	}
	for i := uint32(0); i < count; i++ {
		name, err := d.name()
		if err != nil {
			return err
		}
		typeCode, err := d.u32()
		if err != nil {
			return err
		}
		t := Type(typeCode)
		if t.Size() == 0 {
			return fmt.Errorf("netcdf: attribute %q has unknown type %d", name, typeCode)
		}
		nelems, err := d.u32()
		if err != nil {
			return err
		}
		payload, err := d.take(pad4(int(nelems) * t.Size()))
		if err != nil {
			return err
		}
		payload = payload[:int(nelems)*t.Size()]
		switch t {
		case Char:
			err = a.SetString(name, string(payload))
		case Byte:
			vals := make([]int8, nelems)
			for j := range vals {
				vals[j] = int8(payload[j])
			}
			err = a.SetBytes(name, vals...)
		case Short:
			vals := make([]int16, nelems)
			for j := range vals {
				vals[j] = int16(binary.BigEndian.Uint16(payload[2*j:]))
			}
			err = a.SetShorts(name, vals...)
		case Int:
			vals := make([]int32, nelems)
			for j := range vals {
				vals[j] = int32(binary.BigEndian.Uint32(payload[4*j:]))
			}
			err = a.SetInts(name, vals...)
		case Float:
			vals := make([]float32, nelems)
			for j := range vals {
				vals[j] = math.Float32frombits(binary.BigEndian.Uint32(payload[4*j:]))
			}
			err = a.SetFloats(name, vals...)
		case Double:
			vals := make([]float64, nelems)
			for j := range vals {
				vals[j] = math.Float64frombits(binary.BigEndian.Uint64(payload[8*j:]))
			}
			err = a.SetDoubles(name, vals...)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

type reader struct {
	buf []byte
	pos int
}

func (d *reader) take(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.buf) {
		return nil, fmt.Errorf("netcdf: truncated file (need %d bytes at %d of %d)", n, d.pos, len(d.buf))
	}
	out := d.buf[d.pos : d.pos+n]
	d.pos += n
	return out, nil
}

func (d *reader) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (d *reader) listHeader() (tag, count uint32, err error) {
	tag, err = d.u32()
	if err != nil {
		return 0, 0, err
	}
	count, err = d.u32()
	if err != nil {
		return 0, 0, err
	}
	if tag == 0 && count != 0 {
		return 0, 0, fmt.Errorf("netcdf: absent list with nonzero count %d", count)
	}
	return tag, count, nil
}

func (d *reader) name() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("netcdf: implausible name length %d", n)
	}
	b, err := d.take(pad4(int(n)))
	if err != nil {
		return "", err
	}
	return string(b[:n]), nil
}
