package metrics

// MergeFamilies folds several registry snapshots into one family list
// for a combined exposition: families with the same name are merged
// into one (first HELP/TYPE wins, series concatenated in snapshot
// order), so the merged output carries exactly one TYPE line per name —
// the invariant ValidatePrometheus enforces. Callers must ensure the
// merged series are label-disjoint (each run registry's base labels do
// this); a family whose kind disagrees with the first registration is
// dropped rather than emitted under the wrong TYPE.
//
// This is how the control plane serves one /metrics across N per-run
// registries without aggregating them into a long-lived global registry:
// the merge is computed per scrape from whichever runs are retained, so
// an evicted run's registry stays garbage-collectable.
func MergeFamilies(snapshots ...[]Family) []Family {
	var out []Family
	index := map[string]int{}
	for _, snap := range snapshots {
		for _, fam := range snap {
			i, seen := index[fam.Name]
			if !seen {
				index[fam.Name] = len(out)
				merged := fam
				merged.Series = append([]Series(nil), fam.Series...)
				out = append(out, merged)
				continue
			}
			if out[i].Kind != fam.Kind {
				continue // kind conflict: dropping beats lying about TYPE
			}
			out[i].Series = append(out[i].Series, fam.Series...)
		}
	}
	return out
}
