package flows

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Globus Flows is a hosted automation service: users register flow
// definitions and start runs through a web API. This file exposes the
// engine the same way, so a workflow on one machine can drive flows
// executing on another:
//
//	POST /flows                 {definition}      -> {"flow_id": "..."}
//	POST /flows/{id}/run        {"input": {...}}  -> {"run_id": "..."}
//	GET  /runs/{id}                               -> status + output
//	GET  /runs/{id}/events                        -> event log
//
// Action providers remain host-side: a definition may only reference
// providers registered on the serving engine.

// Service wraps an Engine with definition storage and an HTTP API.
type Service struct {
	engine *Engine

	mu     sync.RWMutex
	flows  map[string]*Definition
	nextID int
}

// NewService wraps an engine.
func NewService(engine *Engine) *Service {
	return &Service{engine: engine, flows: map[string]*Definition{}}
}

// RegisterFlow stores a validated definition and returns its ID.
func (s *Service) RegisterFlow(def *Definition) (string, error) {
	if err := def.Validate(); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("flow-%04d", s.nextID)
	s.flows[id] = def
	return id, nil
}

// Flow fetches a registered definition.
func (s *Service) Flow(id string) (*Definition, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	def, ok := s.flows[id]
	if !ok {
		return nil, fmt.Errorf("flows: no flow %q", id)
	}
	return def, nil
}

type runStatusResponse struct {
	RunID  string         `json:"run_id"`
	Status RunStatus      `json:"status"`
	Output map[string]any `json:"output,omitempty"`
	Error  string         `json:"error,omitempty"`
}

type eventResponse struct {
	Time   time.Time `json:"time"`
	Kind   EventKind `json:"kind"`
	State  string    `json:"state"`
	Detail string    `json:"detail,omitempty"`
}

// Handler exposes the service over HTTP.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/flows", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		def, err := ParseDefinition(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := s.RegisterFlow(def)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeServiceJSON(w, map[string]string{"flow_id": id})
	})
	mux.HandleFunc("/flows/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/flows/")
		parts := strings.Split(rest, "/")
		if len(parts) != 2 || parts[1] != "run" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		def, err := s.Flow(parts[0])
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		var req struct {
			Input map[string]any `json:"input"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil && err != io.EOF {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Runs outlive the HTTP request, so they get a background context;
		// cancellation is the caller's job via the run API (not modeled).
		run, err := s.engine.Start(context.Background(), def, req.Input)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeServiceJSON(w, map[string]string{"run_id": run.ID})
	})
	mux.HandleFunc("/runs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/runs/")
		parts := strings.Split(rest, "/")
		run, err := s.engine.Run(parts[0])
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if len(parts) == 2 && parts[1] == "events" {
			events := run.Events()
			out := make([]eventResponse, len(events))
			for i, ev := range events {
				out[i] = eventResponse{Time: ev.Time, Kind: ev.Kind, State: ev.State, Detail: ev.Detail}
			}
			writeServiceJSON(w, out)
			return
		}
		resp := runStatusResponse{RunID: run.ID, Status: run.Status()}
		if resp.Status != RunActive {
			out, err := run.Wait(r.Context())
			if err != nil {
				resp.Error = err.Error()
			} else {
				resp.Output = out
			}
		}
		writeServiceJSON(w, resp)
	})
	return mux
}

func writeServiceJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}

// Client drives a remote flows service.
type Client struct {
	BaseURL      string
	HTTP         *http.Client
	PollInterval time.Duration
}

// NewClient builds a client.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient, PollInterval: 10 * time.Millisecond}
}

// RegisterFlow uploads a definition and returns the flow ID.
func (c *Client) RegisterFlow(ctx context.Context, definitionJSON []byte) (string, error) {
	var resp map[string]string
	if err := c.post(ctx, "/flows", definitionJSON, &resp); err != nil {
		return "", err
	}
	return resp["flow_id"], nil
}

// StartRun launches a run of a registered flow.
func (c *Client) StartRun(ctx context.Context, flowID string, input map[string]any) (string, error) {
	body, err := json.Marshal(map[string]any{"input": input})
	if err != nil {
		return "", err
	}
	var resp map[string]string
	if err := c.post(ctx, "/flows/"+flowID+"/run", body, &resp); err != nil {
		return "", err
	}
	return resp["run_id"], nil
}

// RunStatus fetches a run snapshot.
func (c *Client) RunStatus(ctx context.Context, runID string) (RunStatus, map[string]any, error) {
	var resp runStatusResponse
	if err := c.get(ctx, "/runs/"+runID, &resp); err != nil {
		return "", nil, err
	}
	if resp.Error != "" {
		return resp.Status, resp.Output, fmt.Errorf("flows: remote run: %s", resp.Error)
	}
	return resp.Status, resp.Output, nil
}

// WaitRun polls until the run completes.
func (c *Client) WaitRun(ctx context.Context, runID string) (map[string]any, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	for {
		status, output, err := c.RunStatus(ctx, runID)
		if err != nil {
			return output, err
		}
		if status == RunSucceeded {
			return output, nil
		}
		if status == RunFailed {
			return output, fmt.Errorf("flows: remote run %s failed", runID)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Events fetches a run's event log.
func (c *Client) Events(ctx context.Context, runID string) ([]Event, error) {
	var resp []eventResponse
	if err := c.get(ctx, "/runs/"+runID+"/events", &resp); err != nil {
		return nil, err
	}
	out := make([]Event, len(resp))
	for i, ev := range resp {
		out[i] = Event{Time: ev.Time, Kind: ev.Kind, State: ev.State, Detail: ev.Detail}
	}
	return out, nil
}

func (c *Client) post(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("flows: %s %s: %s: %s", req.Method, req.URL.Path, resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
