// Command eoml-worker is one fleet worker process: it serves the
// tile-extraction and AICCA-labeling kernels on a local compute
// endpoint, registers that endpoint with a control plane started as
// `eoml serve -fleet`, heartbeats to stay live, and drains gracefully
// on SIGINT. Tasks arrive as granule *references* — shared-storage
// paths plus archive coordinates — never bytes, so a worker can run at
// another facility and fetch its own inputs.
//
//	eoml serve -addr localhost:8080 -fleet        # control plane
//	eoml-worker -coordinator http://localhost:8080
//	eoml-worker -coordinator http://localhost:8080 -slots 4
//
// Submit a run whose YAML declares `distribution: fleet` and the
// coordinator leases its preprocess and inference work to every
// registered worker.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"github.com/eoml/eoml"
)

func main() {
	id := flag.String("id", "", "worker identity; default worker-<hostname>-<pid>")
	coordinator := flag.String("coordinator", "http://localhost:8080", "control-plane base URL hosting the /fleet/ membership API")
	listen := flag.String("listen", "127.0.0.1:0", "task endpoint listen address (0 = OS-assigned port)")
	advertise := flag.String("advertise", "", "endpoint URL to register instead of the listen address (NAT / multi-facility)")
	slots := flag.Int("slots", 1, "tasks this worker executes concurrently")
	taskTimeout := flag.Duration("task-timeout", 0, "per-task execution bound (0 = none)")
	flag.Parse()

	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "unknown"
		}
		*id = fmt.Sprintf("worker-%s-%d", host, os.Getpid())
	}

	w, err := eoml.NewFleetWorker(eoml.FleetWorkerConfig{
		ID:             *id,
		CoordinatorURL: *coordinator,
		ListenAddr:     *listen,
		AdvertiseURL:   *advertise,
		Slots:          *slots,
		TaskTimeout:    *taskTimeout,
	})
	if err != nil {
		log.Fatalf("eoml-worker: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	startCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = w.Start(startCtx)
	cancel()
	if err != nil {
		log.Fatalf("eoml-worker: %v", err)
	}
	fmt.Printf("eoml-worker: %s serving %d slot(s) on %s, registered with %s\n", *id, *slots, w.URL(), *coordinator)

	<-ctx.Done()
	fmt.Println("eoml-worker: draining")
	w.Stop()
}
