package core

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/laads"
)

// waitGoroutines polls until the goroutine count settles back to at
// most base+slack, failing the test if it never does. The slack absorbs
// runtime/test-framework goroutines that come and go.
func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d > %d+%d\n%s", n, base, slack, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// cancellingArchive serves the synthetic archive but cancels the given
// context as soon as the first download request arrives — a
// deterministic mid-run cancellation point.
func cancellingArchive(t *testing.T, cancel context.CancelFunc) *httptest.Server {
	t.Helper()
	srv, err := laads.NewServer(laads.ServerConfig{ScaleDown: testScale, Token: "test-token"})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(cancel)
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestRunCancelledMidRun(t *testing.T) {
	granules := findProductiveGranules(t, 2, 3)
	labeler := trainTestLabeler(t, granules[0])
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ts := cancellingArchive(t, cancel)
	cfg := testConfig(t, ts.URL, granules)
	p, err := New(cfg, labeler)
	if err != nil {
		t.Fatal(err)
	}

	_, err = p.Run(ctx)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not include context.Canceled", err)
	}
	ts.Close() // idempotent; drops server+client conn goroutines
	waitGoroutines(t, base, 3)
}

func TestRunStreamCancelledMidRun(t *testing.T) {
	granules := findProductiveGranules(t, 2, 3)
	labeler := trainTestLabeler(t, granules[0])
	base := runtime.NumGoroutine()

	ts := newArchive(t)
	cfg := testConfig(t, ts.URL, nil)
	p, err := New(cfg, labeler)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// One arrival, then the feed goes quiet without closing — the only
	// way out of the ingest stage is the cancellation.
	arrivals := make(chan int, 1)
	arrivals <- granules[0]
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	_, err = p.RunStream(ctx, arrivals)
	if err == nil {
		t.Fatal("cancelled stream returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not include context.Canceled", err)
	}
	ts.Close()
	waitGoroutines(t, base, 3)
}
