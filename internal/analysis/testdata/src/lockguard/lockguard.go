// Package lockguard seeds guarded-field violations: declared guards
// (`guarded by <mu>` comments), inferred guards (majority of accesses
// under the struct's single mutex), interprocedural helper coverage,
// goroutine severance, and function-literal scopes.
package lockguard

import (
	"sort"
	"sync"
)

// Counter has an explicitly declared guard.
type Counter struct {
	mu sync.Mutex
	// n is the running count. guarded by mu
	n int
	// name is set once at construction and never guarded.
	name string
}

func NewCounter(name string) *Counter {
	return &Counter{name: name} // constructor scope: unshared, no lock needed
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Bad() int {
	return c.n // want "Counter.n is read without holding mu"
}

func (c *Counter) BadWrite(v int) {
	c.n = v // want "Counter.n is written without holding mu"
}

func (c *Counter) Name() string { return c.name } // unguarded field: fine

// Registry's items map is never declared guarded — the guard is
// inferred from the majority of accesses holding mu.
type Registry struct {
	mu    sync.RWMutex
	items map[string]int
}

func NewRegistry() *Registry {
	return &Registry{items: map[string]int{}}
}

func (r *Registry) Put(k string, v int) {
	r.mu.Lock()
	r.items[k] = v
	r.mu.Unlock()
}

func (r *Registry) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.items[k]
}

func (r *Registry) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.items)
}

// Keys sorts under the read lock; the comparator literal is created
// with the lock held, so its accesses count as covered.
func (r *Registry) Keys() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	keys := make([]string, 0, len(r.items))
	for k := range r.items {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return r.items[keys[i]] < r.items[keys[j]]
	})
	return keys
}

func (r *Registry) Leak() map[string]int {
	return r.items // want "Registry.items is read without holding mu"
}

// evictLocked touches items without locking, but every call site holds
// mu — the caller-holds-the-lock helper pattern. Not a finding.
func (r *Registry) evictLocked(k string) {
	delete(r.items, k)
}

func (r *Registry) Evict(k string) {
	r.mu.Lock()
	r.evictLocked(k)
	r.mu.Unlock()
}

// reset is only ever reached through a goroutine launch; a lock held at
// the launch site does not cover the goroutine's execution.
func (r *Registry) reset() {
	r.items = map[string]int{} // want "Registry.items is written without holding mu"
}

func (r *Registry) Recycle() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go r.reset()
}

// Async returns a literal created without the lock: its access has
// unknowable call sites and must lock for itself.
func (r *Registry) Async() func() int {
	return func() int {
		return len(r.items) // want "in a function literal"
	}
}

// Broken points its guard comment at a non-mutex sibling.
type Broken struct {
	mu sync.Mutex
	// guarded by lock
	x int // want "not a sibling mutex field"
}

func (b *Broken) Touch() {
	b.mu.Lock()
	b.x++
	b.mu.Unlock()
}
