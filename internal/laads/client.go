package laads

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/eoml/eoml/internal/metrics"
	"github.com/eoml/eoml/internal/modis"
)

// Client downloads granules from a LAADS-style archive with a worker pool
// and retry, the role wget-under-Globus-Compute plays in the paper.
type Client struct {
	BaseURL string
	Token   string
	// HTTP is the transport; defaults to http.DefaultClient.
	HTTP *http.Client
	// Retries is the number of re-attempts per file after a failure.
	Retries int
	// Backoff is the base delay between retries (doubled each attempt).
	Backoff time.Duration
	// Quota, when set, gates every archive request on the owning
	// tenant's token bucket (see QuotaPool). Nil admits everything.
	Quota *Quota

	m *clientMetrics // nil until Instrument
}

// clientMetrics holds the client's counters; a nil *clientMetrics (the
// uninstrumented default) makes every increment a no-op.
type clientMetrics struct {
	requests *metrics.Counter
	retries  *metrics.Counter
	failures *metrics.Counter
	bytes    *metrics.Counter
}

func (m *clientMetrics) request() {
	if m != nil {
		m.requests.Inc()
	}
}

func (m *clientMetrics) retry() {
	if m != nil {
		m.retries.Inc()
	}
}

func (m *clientMetrics) failure() {
	if m != nil {
		m.failures.Inc()
	}
}

func (m *clientMetrics) downloaded(n int64) {
	if m != nil {
		m.bytes.Add(n)
	}
}

// Instrument registers the client's request, retry, failure, and byte
// counters with reg (eagerly, so the series exist before the first
// request). Safe with a nil registry.
func (c *Client) Instrument(reg *metrics.Registry) {
	c.m = &clientMetrics{
		requests: reg.Counter("eoml_laads_client_requests_total",
			"HTTP requests issued to the archive (every attempt counts)."),
		retries: reg.Counter("eoml_laads_client_retries_total",
			"Download re-attempts after a failed fetch."),
		failures: reg.Counter("eoml_laads_client_failures_total",
			"Downloads abandoned after exhausting retries."),
		bytes: reg.Counter("eoml_laads_client_bytes_total",
			"Granule payload bytes downloaded."),
	}
}

// NewClient builds a client with sane defaults.
func NewClient(baseURL, token string) *Client {
	return &Client{
		BaseURL: baseURL,
		Token:   token,
		HTTP:    http.DefaultClient,
		Retries: 3,
		Backoff: 50 * time.Millisecond,
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// List fetches the day listing for a product.
func (c *Client) List(ctx context.Context, p modis.Product, year, doy int) ([]FileInfo, error) {
	if err := c.Quota.Acquire(ctx); err != nil {
		return nil, err
	}
	url := fmt.Sprintf("%s/archive/%s/%d/%d/", c.BaseURL, p.ShortName(), year, doy)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	c.auth(req)
	c.m.request()
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("laads: listing %s: %s", url, resp.Status)
	}
	var listing []FileInfo
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return nil, fmt.Errorf("laads: listing %s: %w", url, err)
	}
	return listing, nil
}

func (c *Client) auth(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
}

// FileResult records one completed download.
type FileResult struct {
	Name     string
	Path     string
	Bytes    int64
	Duration time.Duration
	Attempts int
}

// Download fetches one granule into destDir, retrying on failure. The
// file is written atomically (temp + rename) so a concurrent crawler
// never sees a partial granule — the HDF-read-error hazard the paper
// works around by delaying preprocessing until downloads complete.
func (c *Client) Download(ctx context.Context, p modis.Product, year, doy int, name, destDir string) (FileResult, error) {
	url := fmt.Sprintf("%s/archive/%s/%d/%d/%s", c.BaseURL, p.ShortName(), year, doy, name)
	res := FileResult{Name: name}
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		res.Attempts = attempt + 1
		if attempt > 0 {
			c.m.retry()
			delay := c.Backoff << (attempt - 1)
			select {
			case <-ctx.Done():
				return res, ctx.Err()
			case <-time.After(delay):
			}
		}
		n, path, err := c.fetchOnce(ctx, url, name, destDir)
		if err == nil {
			res.Bytes = n
			res.Path = path
			res.Duration = time.Since(start)
			c.m.downloaded(n)
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
	}
	c.m.failure()
	return res, fmt.Errorf("laads: download %s failed after %d attempts: %w", name, c.Retries+1, lastErr)
}

func (c *Client) fetchOnce(ctx context.Context, url, name, destDir string) (int64, string, error) {
	if err := c.Quota.Acquire(ctx); err != nil {
		return 0, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	c.auth(req)
	c.m.request()
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, "", fmt.Errorf("laads: GET %s: %s", url, resp.Status)
	}
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return 0, "", err
	}
	final := filepath.Join(destDir, name)
	// The temp name carries the pid: fleet workers share run
	// directories, and a stolen lease can put two processes on the same
	// file at once — each must stage privately, with rename settling the
	// winner (identical bytes either way).
	tmp := fmt.Sprintf("%s.part.%d", final, os.Getpid())
	out, err := os.Create(tmp)
	if err != nil {
		return 0, "", err
	}
	n, err := io.Copy(out, resp.Body)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, "", err
	}
	return n, final, nil
}

// Task names one granule of one product to download.
type Task struct {
	Product modis.Product
	Year    int
	DOY     int
	Name    string
}

// Report summarizes a pooled download run.
type Report struct {
	Files      []FileResult
	TotalBytes int64
	Elapsed    time.Duration
	Workers    int
	Failed     int
}

// MeanSpeedBytesPerSec is total bytes over wall time.
func (r Report) MeanSpeedBytesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TotalBytes) / r.Elapsed.Seconds()
}

// DownloadAll fetches tasks with the given number of parallel workers,
// mirroring the paper's Globus Compute fan-out: each worker takes the next
// queued file when it finishes its current one, and exits when the queue
// drains.
func (c *Client) DownloadAll(ctx context.Context, tasks []Task, destDir string, workers int) (Report, error) {
	if workers <= 0 {
		workers = 1
	}
	start := time.Now()
	queue := make(chan Task)
	results := make(chan FileResult, len(tasks))
	errs := make(chan error, len(tasks))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range queue {
				res, err := c.Download(ctx, t.Product, t.Year, t.DOY, t.Name, destDir)
				if err != nil {
					errs <- err
					continue
				}
				results <- res
			}
		}()
	}
	for _, t := range tasks {
		queue <- t
	}
	close(queue)
	wg.Wait()
	close(results)
	close(errs)

	rep := Report{Workers: workers, Elapsed: time.Since(start)}
	for res := range results {
		rep.Files = append(rep.Files, res)
		rep.TotalBytes += res.Bytes
	}
	var firstErr error
	for err := range errs {
		rep.Failed++
		if firstErr == nil {
			firstErr = err
		}
	}
	return rep, firstErr
}

// RangeTasks builds the task list for an inclusive day-of-year range —
// the paper's "time span, ranging from a single day to up to 24 years".
// The range must stay within one year; multi-year campaigns chain calls.
func RangeTasks(products []modis.Product, year, doyFrom, doyTo int) ([]Task, error) {
	if doyFrom < 1 || doyTo > 366 || doyFrom > doyTo {
		return nil, fmt.Errorf("laads: bad day range %d..%d", doyFrom, doyTo)
	}
	var tasks []Task
	for doy := doyFrom; doy <= doyTo; doy++ {
		tasks = append(tasks, DayTasks(products, year, doy, nil)...)
	}
	return tasks, nil
}

// DayTasks builds the task list for a day of one or more products,
// optionally restricted to specific granule indices.
func DayTasks(products []modis.Product, year, doy int, indices []int) []Task {
	if indices == nil {
		indices = make([]int, modis.GranulesPerDay)
		for i := range indices {
			indices[i] = i
		}
	}
	var tasks []Task
	for _, p := range products {
		for _, idx := range indices {
			g := modis.GranuleID{Satellite: p.Satellite, Year: year, DOY: doy, Index: idx}
			tasks = append(tasks, Task{Product: p, Year: year, DOY: doy, Name: modis.FileName(p, g)})
		}
	}
	return tasks
}
