package stage

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// recStage records which lifecycle phases ran, in a shared log.
type recStage struct {
	name     string
	log      *[]string
	setupErr error
	runErr   error
	drainErr error
}

func (r *recStage) Name() string { return r.name }

func (r *recStage) Setup(ctx context.Context, rc *RunContext) error {
	*r.log = append(*r.log, r.name+".setup")
	return r.setupErr
}

func (r *recStage) Run(ctx context.Context, rc *RunContext) error {
	*r.log = append(*r.log, r.name+".run")
	return r.runErr
}

func (r *recStage) Drain(ctx context.Context, rc *RunContext) error {
	*r.log = append(*r.log, r.name+".drain")
	return r.drainErr
}

func (r *recStage) Close() error {
	*r.log = append(*r.log, r.name+".close")
	return nil
}

func TestOrchestratorLifecycleOrder(t *testing.T) {
	var log []string
	a := &recStage{name: "a", log: &log}
	b := &recStage{name: "b", log: &log}
	o := NewOrchestrator(nil)
	if err := o.Execute(context.Background(), a, b); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"a.setup", "b.setup", // setup in order, before any run
		"a.run", "b.run", // runs in order
		"a.drain", "b.drain", // drains in order
		"b.close", "a.close", // closes in reverse
	}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("lifecycle order %v, want %v", log, want)
	}
	// Every stage got a span.
	for _, name := range []string{"a", "b"} {
		if _, ok := o.Context().Spans.Get(name); !ok {
			t.Errorf("missing span %q", name)
		}
	}
}

func TestOrchestratorRunErrorSkipsRestButCloses(t *testing.T) {
	var log []string
	boom := errors.New("boom")
	a := &recStage{name: "a", log: &log, runErr: boom}
	b := &recStage{name: "b", log: &log}
	err := NewOrchestrator(nil).Execute(context.Background(), a, b)
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the run failure", err)
	}
	want := []string{"a.setup", "b.setup", "a.run", "b.close", "a.close"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", log, want)
	}
}

func TestOrchestratorSetupErrorUnwindsPartialSetup(t *testing.T) {
	var log []string
	boom := errors.New("no resources")
	a := &recStage{name: "a", log: &log}
	b := &recStage{name: "b", log: &log, setupErr: boom}
	c := &recStage{name: "c", log: &log}
	err := NewOrchestrator(nil).Execute(context.Background(), a, b, c)
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the setup failure", err)
	}
	// No stage ran; a and the half-set-up b closed, c untouched.
	want := []string{"a.setup", "b.setup", "b.close", "a.close"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", log, want)
	}
}

func TestOrchestratorCancelledContextJoined(t *testing.T) {
	var log []string
	a := &recStage{name: "a", log: &log}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := NewOrchestrator(nil).Execute(ctx, a)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not include context.Canceled", err)
	}
	// Setup ran (arming is cancellation-agnostic), run was skipped,
	// close still happened.
	want := []string{"a.setup", "a.close"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", log, want)
	}
}

func TestOrchestratorCreatesDirs(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "deep", "run", "dir")
	o := NewOrchestrator(&RunContext{Dirs: []string{dir}})
	if err := o.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		t.Fatalf("dir not created: %v", err)
	}
}

func TestFuncStage(t *testing.T) {
	ran := false
	st := Func("download", func(ctx context.Context, rc *RunContext) error {
		ran = true
		return nil
	})
	if st.Name() != "download" {
		t.Fatalf("name %q", st.Name())
	}
	if err := NewOrchestrator(nil).Execute(context.Background(), st); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("func stage did not run")
	}
}

// newIdleService builds a service over an empty watch dir. A nil
// labeler is fine as long as no well-formed tile file is ever watched:
// unparsable files fail in ReadNetCDF before the labeler is touched.
func newIdleService(t *testing.T, dir string) *InferenceService {
	t.Helper()
	return NewInferenceService(InferenceConfig{
		WatchDir:     dir,
		PollInterval: 5 * time.Millisecond,
		Workers:      2,
		OutboxDir:    t.TempDir(),
		StallTimeout: 5 * time.Second,
	})
}

func TestInferenceServiceZeroExpectation(t *testing.T) {
	svc := newIdleService(t, t.TempDir())
	svc.ExpectFiles(0)
	if err := NewOrchestrator(nil).Execute(context.Background(), svc); err != nil {
		t.Fatal(err)
	}
	if svc.FilesLabeled() != 0 || svc.FlowsFailed() != 0 {
		t.Fatalf("labeled=%d failed=%d", svc.FilesLabeled(), svc.FlowsFailed())
	}
}

func TestInferenceServiceJoinsAllFlowErrors(t *testing.T) {
	dir := t.TempDir()
	// Two unparsable tile files: both flows must fail, and BOTH errors
	// must surface in the joined error (not just the first).
	for _, name := range []string{"bad1.nc", "bad2.nc"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("not netcdf"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	svc := newIdleService(t, dir)
	svc.ExpectFiles(2)
	err := NewOrchestrator(nil).Execute(context.Background(), svc)
	if err == nil {
		t.Fatal("bad tile files produced no error")
	}
	if svc.FlowsFailed() != 2 {
		t.Fatalf("FlowsFailed = %d, want 2", svc.FlowsFailed())
	}
	for _, name := range []string{"bad1.nc", "bad2.nc"} {
		if !contains(err.Error(), name) {
			t.Errorf("joined error omits %s: %v", name, err)
		}
	}
}

func TestInferenceServiceCancelledWhileWaiting(t *testing.T) {
	svc := newIdleService(t, t.TempDir())
	// Expectation never satisfied: one file promised, none produced.
	svc.ExpectFiles(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- NewOrchestrator(nil).Execute(ctx, svc)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v does not include context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled service did not shut down")
	}
}

func TestInferenceServiceStallTimeout(t *testing.T) {
	svc := NewInferenceService(InferenceConfig{
		WatchDir:     t.TempDir(),
		PollInterval: 5 * time.Millisecond,
		OutboxDir:    t.TempDir(),
		StallTimeout: 30 * time.Millisecond,
	})
	svc.ExpectFiles(3) // never arrives
	err := NewOrchestrator(nil).Execute(context.Background(), svc)
	if err == nil || !contains(err.Error(), "stalled") {
		t.Fatalf("stall not reported: %v", err)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
