package flows

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestActionRetrySucceedsAfterTransientFailures(t *testing.T) {
	e := NewEngine(EngineConfig{})
	var attempts int64
	if err := e.RegisterProvider("flaky", func(ctx context.Context, p map[string]any) (any, error) {
		if atomic.AddInt64(&attempts, 1) < 3 {
			return nil, errors.New("transient")
		}
		return "finally", nil
	}); err != nil {
		t.Fatal(err)
	}
	def, err := ParseDefinition([]byte(`{
		"StartAt": "A",
		"States": {"A": {
			"Type": "Action",
			"ActionProvider": "flaky",
			"Retry": {"MaxAttempts": 5},
			"ResultPath": "$.out",
			"End": true
		}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	run, err := e.Start(context.Background(), def, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := run.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out["out"] != "finally" || atomic.LoadInt64(&attempts) != 3 {
		t.Fatalf("out=%v attempts=%d", out["out"], attempts)
	}
}

func TestActionRetryExhaustedFailsRun(t *testing.T) {
	e := NewEngine(EngineConfig{})
	var attempts int64
	if err := e.RegisterProvider("doomed", func(ctx context.Context, p map[string]any) (any, error) {
		atomic.AddInt64(&attempts, 1)
		return nil, errors.New("permanent")
	}); err != nil {
		t.Fatal(err)
	}
	def, err := ParseDefinition([]byte(`{
		"StartAt": "A",
		"States": {"A": {
			"Type": "Action", "ActionProvider": "doomed",
			"Retry": {"MaxAttempts": 3}, "End": true
		}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	run, err := e.Start(context.Background(), def, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(context.Background()); err == nil {
		t.Fatal("exhausted retries succeeded")
	}
	if atomic.LoadInt64(&attempts) != 3 {
		t.Fatalf("attempts = %d", attempts)
	}
}

func TestActionCatchRedirectsToHandler(t *testing.T) {
	e := NewEngine(EngineConfig{})
	if err := e.RegisterProvider("bad", func(ctx context.Context, p map[string]any) (any, error) {
		return nil, errors.New("archive unavailable")
	}); err != nil {
		t.Fatal(err)
	}
	cleanedUp := false
	if err := e.RegisterProvider("cleanup", func(ctx context.Context, p map[string]any) (any, error) {
		cleanedUp = true
		return p["reason"], nil
	}); err != nil {
		t.Fatal(err)
	}
	def, err := ParseDefinition([]byte(`{
		"StartAt": "A",
		"States": {
			"A": {
				"Type": "Action", "ActionProvider": "bad",
				"Catch": {"Next": "Cleanup", "ErrorPath": "$.error"},
				"Next": "Never"
			},
			"Never": {"Type": "Fail", "Error": "Unreachable", "Cause": "catch must divert"},
			"Cleanup": {
				"Type": "Action", "ActionProvider": "cleanup",
				"Parameters": {"reason": "$.error"},
				"ResultPath": "$.handled",
				"End": true
			}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	run, err := e.Start(context.Background(), def, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := run.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !cleanedUp {
		t.Fatal("catch handler never ran")
	}
	if s, _ := out["handled"].(string); !strings.Contains(s, "archive unavailable") {
		t.Fatalf("handled = %v", out["handled"])
	}
}

func TestRetryCatchValidation(t *testing.T) {
	cases := map[string]string{
		"zero attempts": `{"StartAt": "A", "States": {"A": {
			"Type": "Action", "ActionProvider": "p", "Retry": {"MaxAttempts": 0}, "End": true}}}`,
		"catch no next": `{"StartAt": "A", "States": {"A": {
			"Type": "Action", "ActionProvider": "p", "Catch": {}, "End": true}}}`,
		"catch bad target": `{"StartAt": "A", "States": {"A": {
			"Type": "Action", "ActionProvider": "p", "Catch": {"Next": "Ghost"}, "End": true}}}`,
	}
	for name, doc := range cases {
		if _, err := ParseDefinition([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
