package stage

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/eoml/eoml/internal/metrics"
)

// instrumentedRC builds a RunContext with live metric and health sinks.
func instrumentedRC() (*RunContext, *metrics.Registry, *metrics.Health) {
	reg := metrics.NewRegistry()
	h := metrics.NewHealth()
	return &RunContext{Metrics: reg, Health: h}, reg, h
}

func familySet(reg *metrics.Registry) map[string]bool {
	out := map[string]bool{}
	for _, f := range reg.Snapshot() {
		out[f.Name] = true
	}
	return out
}

func TestOrchestratorInstrumentsStages(t *testing.T) {
	var log []string
	a := &recStage{name: "a", log: &log}
	b := &recStage{name: "b", log: &log}
	rc, reg, h := instrumentedRC()
	if err := NewOrchestrator(rc).Execute(context.Background(), a, b); err != nil {
		t.Fatal(err)
	}
	fams := familySet(reg)
	for _, want := range []string{MetricStageEvents, MetricStageFailures, MetricStageSeconds} {
		if !fams[want] {
			t.Errorf("registry missing %s after a clean run", want)
		}
	}
	// Each stage's latency histogram got exactly one sample (the drain
	// phase extends the span rather than adding a second observation).
	for _, f := range reg.Snapshot() {
		if f.Name != MetricStageSeconds {
			continue
		}
		for _, s := range f.Series {
			if s.Histogram == nil || s.Histogram.Count != 1 {
				t.Errorf("stage %v latency sample count = %+v, want 1", s.Labels, s.Histogram)
			}
		}
	}
	healthy, stages := h.Check()
	if !healthy {
		t.Errorf("health unhealthy after clean run: %+v", stages)
	}
	for _, st := range stages {
		if st.State != metrics.StateDone {
			t.Errorf("stage %s state %s, want done", st.Stage, st.State)
		}
	}
}

func TestStageFailureCountsAndMarksUnhealthy(t *testing.T) {
	var log []string
	boom := errors.New("boom")
	a := &recStage{name: "a", log: &log, runErr: boom}
	rc, _, h := instrumentedRC()
	if err := NewOrchestrator(rc).Execute(context.Background(), a); !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the run failure", err)
	}
	if v := rc.failures("a").Value(); v != 1 {
		t.Errorf("failure counter = %v, want 1", v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != 503 {
		t.Fatalf("healthz after stage failure = %d, want 503", w.Code)
	}
}

// TestInferenceStallFlipsHealthz is the acceptance check for
// stall_timeout_ms: when the inference stage stops making progress for
// longer than its stall budget, the run aborts and /healthz reports 503.
func TestInferenceStallFlipsHealthz(t *testing.T) {
	svc := NewInferenceService(InferenceConfig{
		WatchDir:     t.TempDir(),
		PollInterval: 5 * time.Millisecond,
		OutboxDir:    t.TempDir(),
		StallTimeout: 30 * time.Millisecond,
	})
	svc.ExpectFiles(1) // promised file never arrives
	rc, _, h := instrumentedRC()
	err := NewOrchestrator(rc).Execute(context.Background(), svc)
	if err == nil || !contains(err.Error(), "stalled") {
		t.Fatalf("stall not reported: %v", err)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != 503 {
		t.Fatalf("healthz after stall = %d, want 503", w.Code)
	}
	_, stages := h.Check()
	for _, st := range stages {
		if st.Stage == svc.Name() && st.State != metrics.StateFailed {
			t.Errorf("inference state %s, want failed", st.State)
		}
	}
}
