package compute

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// The HTTP transport lets a workflow submit functions to an endpoint on
// another machine, as Globus Compute does through its cloud service. The
// wire protocol is deliberately small:
//
//	POST /submit            {"function": "...", "args": {...}} -> {"task_id": "..."}
//	POST /submit_batch      {"tasks": [{"function","args"}...]} -> {"task_ids": [...]}
//	GET  /tasks/{id}        -> {"task_id", "state", "result"?, "error"?}
//	POST /tasks/poll        {"ids": [...]} -> {"tasks": [{"task_id","state",...}...]}
//	GET  /status            -> {"endpoint", "active_workers", "functions": [...]}
//
// The two batch verbs exist for the fleet hot path: one round-trip
// carries a worker's whole lease window in, and one poll round-trip
// carries every finished result of that window out, instead of paying
// per-task HTTP overhead on small-granule workloads.

type submitRequest struct {
	Function string         `json:"function"`
	Args     map[string]any `json:"args"`
}

type submitResponse struct {
	TaskID string `json:"task_id"`
}

type taskResponse struct {
	TaskID string    `json:"task_id"`
	State  TaskState `json:"state"`
	Result any       `json:"result,omitempty"`
	Error  string    `json:"error,omitempty"`
}

type statusResponse struct {
	Endpoint      string   `json:"endpoint"`
	ActiveWorkers int      `json:"active_workers"`
	Functions     []string `json:"functions"`
}

type submitBatchRequest struct {
	Tasks []Spec `json:"tasks"`
}

type submitBatchResponse struct {
	TaskIDs []string `json:"task_ids"`
}

type pollBatchRequest struct {
	IDs []string `json:"ids"`
}

type pollBatchResponse struct {
	Tasks []taskResponse `json:"tasks"`
}

// Handler exposes the endpoint over HTTP.
func (e *Endpoint) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req submitRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fut, err := e.Submit(req.Function, req.Args)
		if err != nil {
			// A draining endpoint is a retryable condition, not a bad
			// request: 503 tells remote submitters (the fleet coordinator)
			// to resubmit the task elsewhere.
			if errors.Is(err, ErrDraining) {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, submitResponse{TaskID: fut.ID})
	})
	mux.HandleFunc("/submit_batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req submitBatchRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		futs, err := e.SubmitBatch(req.Tasks)
		if err != nil {
			if errors.Is(err, ErrDraining) {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ids := make([]string, len(futs))
		for i, f := range futs {
			ids[i] = f.ID
		}
		writeJSON(w, submitBatchResponse{TaskIDs: ids})
	})
	mux.HandleFunc("/tasks/poll", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req pollBatchRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out := pollBatchResponse{Tasks: make([]taskResponse, 0, len(req.IDs))}
		for _, id := range req.IDs {
			fut, err := e.Future(id)
			if err != nil {
				// Unknown IDs fail the whole poll, matching GET /tasks/{id}:
				// the caller's batch state is stale (endpoint restarted) and
				// partial answers would mask it.
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			tr := taskResponse{TaskID: fut.ID, State: fut.State()}
			if tr.State == Completed || tr.State == Errored {
				result, err := fut.Get(r.Context())
				if err != nil {
					tr.Error = err.Error()
				} else {
					tr.Result = result
				}
			}
			out.Tasks = append(out.Tasks, tr)
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/tasks/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/tasks/")
		fut, err := e.Future(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		resp := taskResponse{TaskID: fut.ID, State: fut.State()}
		if resp.State == Completed || resp.State == Errored {
			result, err := fut.Get(r.Context())
			if err != nil {
				resp.Error = err.Error()
			} else {
				resp.Result = result
			}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, statusResponse{
			Endpoint:      e.ID,
			ActiveWorkers: e.ActiveWorkers(),
			Functions:     e.reg.Names(),
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection gone; nothing to recover.
		return
	}
}

// RemoteEndpoint submits tasks to an Endpoint served over HTTP.
type RemoteEndpoint struct {
	BaseURL string
	HTTP    *http.Client
	// PollInterval is how often Get polls the task state.
	PollInterval time.Duration
}

// NewRemoteEndpoint builds a client for an endpoint URL.
func NewRemoteEndpoint(baseURL string) *RemoteEndpoint {
	return &RemoteEndpoint{BaseURL: baseURL, HTTP: http.DefaultClient, PollInterval: 10 * time.Millisecond}
}

// RemoteFuture is a handle to a task on a remote endpoint.
type RemoteFuture struct {
	TaskID string
	ep     *RemoteEndpoint
}

// Submit sends a task and returns a pollable handle.
func (r *RemoteEndpoint) Submit(ctx context.Context, function string, args map[string]any) (*RemoteFuture, error) {
	body, err := json.Marshal(submitRequest{Function: function, Args: args})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.BaseURL+"/submit", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The wire inverse of the handler's ErrDraining mapping, so
			// errors.Is works across the HTTP hop.
			return nil, fmt.Errorf("compute: submit: %s: %w", strings.TrimSpace(string(msg)), ErrDraining)
		}
		return nil, fmt.Errorf("compute: submit: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	return &RemoteFuture{TaskID: sr.TaskID, ep: r}, nil
}

// SubmitBatch sends the whole batch in one round-trip and returns one
// pollable handle per task, in batch order. The endpoint accepts all or
// nothing; a draining endpoint surfaces as ErrDraining exactly like the
// single-task path.
func (r *RemoteEndpoint) SubmitBatch(ctx context.Context, specs []Spec) ([]*RemoteFuture, error) {
	body, err := json.Marshal(submitBatchRequest{Tasks: specs})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.BaseURL+"/submit_batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusServiceUnavailable {
			return nil, fmt.Errorf("compute: submit_batch: %s: %w", strings.TrimSpace(string(msg)), ErrDraining)
		}
		return nil, fmt.Errorf("compute: submit_batch: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var sr submitBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	if len(sr.TaskIDs) != len(specs) {
		return nil, fmt.Errorf("compute: submit_batch returned %d ids for %d tasks", len(sr.TaskIDs), len(specs))
	}
	futs := make([]*RemoteFuture, len(sr.TaskIDs))
	for i, id := range sr.TaskIDs {
		futs[i] = &RemoteFuture{TaskID: id, ep: r}
	}
	return futs, nil
}

// TaskStatus is one task's state as reported by a batch poll.
type TaskStatus struct {
	TaskID string
	State  TaskState
	Result any
	Error  string
}

// PollBatch fetches the state of many tasks in one round-trip — the
// batched result collection of the fleet protocol. Results come back in
// request order.
func (r *RemoteEndpoint) PollBatch(ctx context.Context, ids []string) ([]TaskStatus, error) {
	body, err := json.Marshal(pollBatchRequest{IDs: ids})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.BaseURL+"/tasks/poll", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("compute: poll batch: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var pr pollBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, err
	}
	out := make([]TaskStatus, len(pr.Tasks))
	for i, tr := range pr.Tasks {
		out[i] = TaskStatus{TaskID: tr.TaskID, State: tr.State, Result: tr.Result, Error: tr.Error}
	}
	return out, nil
}

// Poll fetches the task state once.
func (f *RemoteFuture) Poll(ctx context.Context) (taskResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.ep.BaseURL+"/tasks/"+f.TaskID, nil)
	if err != nil {
		return taskResponse{}, err
	}
	resp, err := f.ep.HTTP.Do(req)
	if err != nil {
		return taskResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return taskResponse{}, fmt.Errorf("compute: poll %s: %s", f.TaskID, resp.Status)
	}
	var tr taskResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return taskResponse{}, err
	}
	return tr, nil
}

// Get polls until the remote task completes, the context is cancelled, or
// the endpoint reports an error.
func (f *RemoteFuture) Get(ctx context.Context) (any, error) {
	interval := f.ep.PollInterval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	for {
		tr, err := f.Poll(ctx)
		if err != nil {
			return nil, err
		}
		switch tr.State {
		case Completed:
			return tr.Result, nil
		case Errored:
			return nil, fmt.Errorf("compute: remote task %s: %s", f.TaskID, tr.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Status fetches endpoint health.
func (r *RemoteEndpoint) Status(ctx context.Context) (endpoint string, activeWorkers int, functions []string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+"/status", nil)
	if err != nil {
		return "", 0, nil, err
	}
	resp, err := r.HTTP.Do(req)
	if err != nil {
		return "", 0, nil, err
	}
	defer resp.Body.Close()
	var sr statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return "", 0, nil, err
	}
	return sr.Endpoint, sr.ActiveWorkers, sr.Functions, nil
}
