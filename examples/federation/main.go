// Federation: the paper's §V vision assembled end to end.
//
// A pipeline is published to the federated registry, instantiated with
// site-specific parameters, and executed as a Zambeze-style campaign
// spanning two facilities: "olcf" runs the EO-ML workflow (download →
// tiles → AICCA labels → shipment), then "nersc" runs a downstream
// climate analysis over the shipped products. Provenance is recorded
// across the whole campaign.
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"github.com/eoml/eoml"
)

func main() {
	const scale = 32
	ctx := context.Background()

	// ---- Shared infrastructure ----------------------------------------
	archive, err := eoml.NewArchiveServer(eoml.ArchiveOptions{ScaleDown: scale})
	if err != nil {
		log.Fatal(err)
	}
	archiveSrv := httptest.NewServer(archive)
	defer archiveSrv.Close()

	root, err := os.MkdirTemp("", "eoml-federation-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// ---- 1. Publish the workflow to the federated registry -------------
	registry, err := eoml.NewPipelineRegistry()
	if err != nil {
		log.Fatal(err)
	}
	published, err := registry.Publish(eoml.EOMLRegisteredPipeline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federation: published %s (components %v)\n", published.Ref(), published.Components)

	inst, err := registry.Instantiate(published.Ref(), map[string]any{
		"tile_pixels":        4,
		"preprocess_workers": 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federation: instantiated with params %v\n", inst.Params)

	// ---- 2. Build facility agents ---------------------------------------
	cfg := eoml.DefaultConfig()
	cfg.ArchiveURL = archiveSrv.URL
	cfg.TilePixels = int(inst.Params["tile_pixels"].(int))
	cfg.PreprocessWorkers = int(inst.Params["preprocess_workers"].(int))
	cfg.PollInterval = 20 * time.Millisecond
	cfg.DataDir = filepath.Join(root, "olcf", "data")
	cfg.TileDir = filepath.Join(root, "olcf", "tiles")
	cfg.OutboxDir = filepath.Join(root, "olcf", "outbox")
	cfg.DestDir = filepath.Join(root, "shared", "aicca") // cross-facility landing
	granules, err := eoml.FindDayGranules(cfg, scale, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Granules = granules

	prov := eoml.NewProvenanceStore()

	olcf, err := eoml.NewFacilityAgent("olcf", 2)
	if err != nil {
		log.Fatal(err)
	}
	err = olcf.RegisterPlugin("eo-ml", func(ctx context.Context, params map[string]any) (any, error) {
		labeler, err := eoml.TrainFromArchive(ctx, cfg, eoml.TrainOptions{Classes: 6, Epochs: 2, Seed: 14})
		if err != nil {
			return nil, err
		}
		pipe, err := eoml.NewPipeline(cfg, labeler)
		if err != nil {
			return nil, err
		}
		pipe.SetProvenance(prov)
		rep, err := pipe.Run(ctx)
		if err != nil {
			return nil, err
		}
		return rep.Summary(), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	nersc, err := eoml.NewFacilityAgent("nersc", 2)
	if err != nil {
		log.Fatal(err)
	}
	err = nersc.RegisterPlugin("climate-analysis", func(ctx context.Context, params map[string]any) (any, error) {
		shipped, err := filepath.Glob(filepath.Join(cfg.DestDir, "*.nc"))
		if err != nil {
			return nil, err
		}
		var tiles []*eoml.Tile
		for _, path := range shipped {
			ts, err := eoml.ReadTiles(path)
			if err != nil {
				return nil, err
			}
			tiles = append(tiles, ts...)
		}
		atlas := eoml.ClassAtlas(tiles)
		return fmt.Sprintf("%d tiles across %d classes", len(tiles), len(atlas)), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// ---- 3. Run the cross-facility campaign -----------------------------
	orch := eoml.NewOrchestrator()
	if err := orch.Connect(olcf); err != nil {
		log.Fatal(err)
	}
	if err := orch.Connect(nersc); err != nil {
		log.Fatal(err)
	}
	run, err := orch.Submit(ctx, &eoml.Campaign{
		Name: "eo-ml-federated",
		Activities: []eoml.CampaignActivity{
			{ID: "produce", Facility: "olcf", Plugin: "eo-ml"},
			{ID: "analyze", Facility: "nersc", Plugin: "climate-analysis", DependsOn: []string{"produce"}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := run.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	produce, _ := run.Result("produce")
	analyze, _ := run.Result("analyze")
	fmt.Println("federation: olcf/eo-ml:          ", produce)
	fmt.Println("federation: nersc/climate-analysis:", analyze)

	fmt.Println("\ncampaign events:")
	for _, ev := range run.Events() {
		fmt.Printf("  %-8s %-11s %s\n", ev.Activity, ev.State, ev.Detail)
	}

	// ---- 4. Provenance spans the campaign -------------------------------
	shipped, _ := filepath.Glob(filepath.Join(cfg.DestDir, "*.nc"))
	if len(shipped) > 0 {
		steps, err := prov.Lineage("shipped:" + filepath.Base(shipped[0]))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nlineage of %s: %d steps back to the archive\n", filepath.Base(shipped[0]), len(steps))
	}
}
