package core

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/eoml/eoml/internal/aicca"
	"github.com/eoml/eoml/internal/flows"
	"github.com/eoml/eoml/internal/hdf"
	"github.com/eoml/eoml/internal/modis"
	"github.com/eoml/eoml/internal/parsl"
	"github.com/eoml/eoml/internal/provenance"
	"github.com/eoml/eoml/internal/ricc"
	"github.com/eoml/eoml/internal/tile"
	"github.com/eoml/eoml/internal/trace"
	"github.com/eoml/eoml/internal/transfer"
	"github.com/eoml/eoml/internal/watch"
)

// Report summarizes a completed pipeline run.
type Report struct {
	GranulesRequested int
	FilesDownloaded   int
	BytesDownloaded   int64
	TileFiles         int // granules that yielded ocean-cloud tiles
	TilesProduced     int
	TilesLabeled      int
	FilesShipped      int
	Elapsed           time.Duration

	// Stage telemetry (Fig. 6 / Fig. 7 counterparts for real runs).
	Timeline *trace.Timeline
	Spans    *trace.Spans
}

// Pipeline executes the five-stage workflow.
type Pipeline struct {
	cfg     Config
	labeler *aicca.Labeler
	prov    *provenance.Store
}

// New builds a pipeline. The labeler may be nil only if the config names
// model and codebook files to load.
func New(cfg Config, labeler *aicca.Labeler) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if labeler == nil {
		if cfg.ModelPath == "" || cfg.CodebookPath == "" {
			return nil, fmt.Errorf("core: pipeline needs a labeler or model+codebook paths")
		}
		model, err := ricc.Load(cfg.ModelPath)
		if err != nil {
			return nil, err
		}
		cb, err := ricc.LoadCodebook(cfg.CodebookPath)
		if err != nil {
			return nil, err
		}
		labeler, err = aicca.NewLabeler(model, cb)
		if err != nil {
			return nil, err
		}
	}
	return &Pipeline{cfg: cfg, labeler: labeler}, nil
}

// Run executes download → preprocess → monitor/trigger → inference →
// shipment and returns the run report. Inference overlaps preprocessing,
// as in the paper's Fig. 6; shipment begins once every tile file is
// labeled.
func (p *Pipeline) Run(ctx context.Context) (*Report, error) {
	start := time.Now()
	rep := &Report{
		GranulesRequested: len(p.cfg.GranuleIDs()),
		Timeline:          trace.NewTimeline(),
		Spans:             trace.NewSpans(),
	}
	since := func() float64 { return time.Since(start).Seconds() }

	for _, dir := range []string{p.cfg.DataDir, p.cfg.TileDir, p.cfg.OutboxDir, p.cfg.DestDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}

	// ---- Stage 3+4 first: arm the monitor and the inference flow so
	// they overlap preprocessing (files are labeled as they appear).
	//
	// Cross-file batcher: tiles from all watched files funnel into shared
	// encode batches (flush on size or deadline), with per-batch spans on
	// the run timeline.
	batcher := aicca.NewBatchLabeler(p.labeler, aicca.BatchConfig{
		MaxTiles: p.cfg.BatchTiles,
		MaxDelay: p.cfg.BatchDelay,
		Timeline: rep.Timeline,
		Epoch:    start,
	})
	defer batcher.Close()

	engine := flows.NewEngine(flows.EngineConfig{})
	if err := engine.RegisterProvider("inference", p.inferenceProvider(batcher)); err != nil {
		return nil, err
	}
	if err := engine.RegisterProvider("move", p.moveProvider()); err != nil {
		return nil, err
	}
	flowDef, err := flows.ParseDefinition([]byte(inferenceFlowDefinition))
	if err != nil {
		return nil, err
	}

	crawler, err := watch.NewCrawler(watch.Config{
		Dir:      p.cfg.TileDir,
		Pattern:  "*.nc",
		Interval: p.cfg.PollInterval,
	})
	if err != nil {
		return nil, err
	}

	var mu sync.Mutex
	labeled := 0
	tilesLabeled := 0
	var flowErr error
	inferCtx, stopCrawler := context.WithCancel(ctx)
	defer stopCrawler()
	crawlerDone := make(chan struct{})
	inferenceStarted := false

	// Progress signal: workers nudge this channel after every completed
	// flow so the post-preprocess wait blocks instead of polling.
	progress := make(chan struct{}, 1)
	bump := func() {
		select {
		case progress <- struct{}{}:
		default:
		}
	}

	// Bounded inference worker pool: the crawler only enqueues events;
	// exactly InferenceWorkers goroutines run flows, each synchronously,
	// so a burst of watched files cannot fan out into a goroutine per
	// file.
	events := make(chan watch.Event, 4*p.cfg.InferenceWorkers+64)
	var poolWG sync.WaitGroup
	for w := 0; w < p.cfg.InferenceWorkers; w++ {
		poolWG.Add(1)
		go func() {
			defer poolWG.Done()
			for ev := range events {
				mu.Lock()
				if !inferenceStarted {
					inferenceStarted = true
					rep.Timeline.Record("inference", since(), 1)
				}
				mu.Unlock()
				run, err := engine.Start(ctx, flowDef, map[string]any{
					"file":   ev.Path,
					"outbox": p.cfg.OutboxDir,
				})
				var out map[string]any
				if err == nil {
					out, err = run.Wait(ctx)
				}
				mu.Lock()
				if err != nil {
					if flowErr == nil {
						flowErr = err
					}
				} else {
					labeled++
					if n, ok := out["labeled"].(int); ok {
						tilesLabeled += n
					}
					rep.Timeline.Record("inference", since(), 0)
				}
				mu.Unlock()
				bump()
			}
		}()
	}

	go func() {
		defer close(crawlerDone)
		_ = crawler.Run(inferCtx, func(evs []watch.Event) error {
			for _, ev := range evs {
				events <- ev
			}
			return nil
		})
	}()

	// ---- Stage 1: download (Globus-Compute-style fan-out) -------------
	dlStart := since()
	files, bytes, err := p.downloadViaCompute(ctx, p.cfg.GranuleIDs(), func(active int) {
		rep.Timeline.Record("download", since(), active)
	})
	if err != nil {
		return nil, err
	}
	rep.FilesDownloaded = files
	rep.BytesDownloaded = bytes
	rep.Spans.Add("download", dlStart, since())

	// ---- Stage 2: preprocess (Parsl block) ----------------------------
	preStart := since()
	exec, err := parsl.NewHTEX(parsl.HTEXConfig{
		Label:          "preprocess",
		WorkersPerNode: p.cfg.PreprocessWorkers,
		InitBlocks:     1,
		MaxBlocks:      1,
		OnWorkerChange: func(busy int) {
			rep.Timeline.Record("preprocess", since(), busy)
		},
	})
	if err != nil {
		return nil, err
	}
	if err := exec.Start(); err != nil {
		return nil, err
	}
	dfk, err := parsl.NewDFK(exec, parsl.DFKConfig{Retries: 1})
	if err != nil {
		return nil, err
	}

	granules := p.cfg.GranuleIDs()
	apps := make([]parsl.App, len(granules))
	for i, g := range granules {
		g := g
		apps[i] = func(ctx context.Context) (any, error) {
			return p.preprocessGranule(g)
		}
	}
	futs := dfk.Map("tiles", apps)
	expectFiles := 0
	for i, f := range futs {
		v, err := f.Get(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: preprocess granule %d: %w", granules[i].Index, err)
		}
		r := v.(preResult)
		rep.TilesProduced += r.tiles
		if r.hasFile {
			expectFiles++
		}
	}
	rep.TileFiles = expectFiles
	if err := exec.Shutdown(); err != nil {
		return nil, err
	}
	rep.Spans.Add("preprocess", preStart, since())

	// ---- Wait for inference to catch up -------------------------------
	// Workers signal progress after every completed flow, so this blocks
	// on the channel instead of sleeping and re-polling.
	stall := time.NewTimer(5 * time.Minute)
	defer stall.Stop()
	for {
		mu.Lock()
		done := labeled >= expectFiles
		err := flowErr
		mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("core: inference flow: %w", err)
		}
		if done {
			break
		}
		select {
		case <-progress:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-stall.C:
			return nil, fmt.Errorf("core: inference stalled: %d/%d files labeled", labeled, expectFiles)
		}
	}
	stopCrawler()
	<-crawlerDone // crawler has stopped enqueueing
	close(events)
	poolWG.Wait()
	batcher.Close()
	mu.Lock()
	rep.TilesLabeled = tilesLabeled
	mu.Unlock()
	rep.Spans.Add("inference", preStart, since())

	// ---- Stage 5: shipment --------------------------------------------
	shipStart := since()
	shipWall := time.Now()
	if expectFiles > 0 {
		svc := transfer.NewService(transfer.Options{VerifyChecksum: true, Parallelism: 4})
		if _, err := svc.RegisterEndpoint("defiant", "ACE Defiant", p.cfg.OutboxDir); err != nil {
			return nil, err
		}
		if _, err := svc.RegisterEndpoint("orion", "Frontier Orion", p.cfg.DestDir); err != nil {
			return nil, err
		}
		taskID, err := svc.SubmitDir("defiant", "orion", ".", ".")
		if err != nil {
			return nil, fmt.Errorf("core: shipment: %w", err)
		}
		st, err := svc.Wait(ctx, taskID)
		if err != nil {
			return nil, err
		}
		if st.State != transfer.Succeeded {
			return nil, fmt.Errorf("core: shipment failed: %v", st.Errors)
		}
		rep.FilesShipped = st.FilesDone
		if p.prov != nil {
			entries, err := os.ReadDir(p.cfg.OutboxDir)
			if err == nil {
				var names []string
				for _, e := range entries {
					if !e.IsDir() {
						names = append(names, e.Name())
					}
				}
				p.recordShipment(names, shipWall, time.Now())
			}
		}
	}
	rep.Spans.Add("shipment", shipStart, since())

	rep.Elapsed = time.Since(start)
	return rep, nil
}

// preResult is the per-granule outcome of the preprocessing app.
type preResult struct {
	tiles   int
	hasFile bool
}

// preprocessGranule converts one granule triple into a tile NetCDF.
func (p *Pipeline) preprocessGranule(g modis.GranuleID) (any, error) {
	started := time.Now()
	read := func(kind modis.Kind) (*hdf.File, error) {
		prod := modis.Product{Satellite: g.Satellite, Kind: kind}
		return hdf.ReadFile(filepath.Join(p.cfg.DataDir, modis.FileName(prod, g)))
	}
	mod02, err := read(modis.L1B)
	if err != nil {
		return nil, err
	}
	mod03, err := read(modis.Geo)
	if err != nil {
		return nil, err
	}
	mod06, err := read(modis.Cloud)
	if err != nil {
		return nil, err
	}
	res, err := tile.Extract(mod02, mod03, mod06, tile.Options{
		TileSize:     p.cfg.TilePixels,
		MinCloudFrac: p.cfg.MinCloudFrac,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Tiles) == 0 {
		return preResult{}, nil // night granule or no ocean clouds
	}
	name := fmt.Sprintf("tiles.%s.A%04d%03d.%s.nc", g.Satellite.Prefix(), g.Year, g.DOY, g.HHMM())
	path := filepath.Join(p.cfg.TileDir, name)
	if err := tile.WriteNetCDF(path, res.Tiles); err != nil {
		return nil, err
	}
	p.recordPreprocess(g, path, len(res.Tiles), started, time.Now())
	return preResult{tiles: len(res.Tiles), hasFile: true}, nil
}

// inferenceFlowDefinition is the Globus-Flows-style definition of stages
// 3–4: label the file, then move it to the shipment outbox.
const inferenceFlowDefinition = `{
  "Comment": "EO-ML inference flow: label tiles, stage for shipment",
  "StartAt": "Infer",
  "States": {
    "Infer": {
      "Type": "Action",
      "ActionProvider": "inference",
      "Parameters": {"file": "$.file"},
      "ResultPath": "$.labeled",
      "Next": "Move"
    },
    "Move": {
      "Type": "Action",
      "ActionProvider": "move",
      "Parameters": {"file": "$.file", "outbox": "$.outbox", "labeled": "$.labeled"},
      "ResultPath": "$.moved",
      "Next": "Done"
    },
    "Done": {"Type": "Succeed"}
  }
}`

func (p *Pipeline) inferenceProvider(batcher *aicca.BatchLabeler) flows.ActionProvider {
	return func(ctx context.Context, params map[string]any) (any, error) {
		path, _ := params["file"].(string)
		if path == "" {
			return nil, fmt.Errorf("core: inference action needs a file")
		}
		return batcher.LabelFile(path)
	}
}

func (p *Pipeline) moveProvider() flows.ActionProvider {
	return func(ctx context.Context, params map[string]any) (any, error) {
		started := time.Now()
		src, _ := params["file"].(string)
		outbox, _ := params["outbox"].(string)
		if src == "" || outbox == "" {
			return nil, fmt.Errorf("core: move action needs file and outbox")
		}
		labeled, _ := params["labeled"].(int)
		dst := filepath.Join(outbox, filepath.Base(src))
		if err := os.Rename(src, dst); err != nil {
			// Cross-device rename fallback.
			if cerr := copyPreserving(src, dst); cerr != nil {
				return nil, cerr
			}
		}
		p.recordInference(src, dst, labeled, started, time.Now())
		return dst, nil
	}
}

// copyPreserving moves src to dst across filesystems: it copies into a
// temp file next to dst, carries over the source file mode, fsyncs, and
// renames into place before removing the source — so a crash mid-move
// can leave a stray temp file but never a truncated dst or a lost file.
func copyPreserving(src, dst string) error {
	info, err := os.Stat(src)
	if err != nil {
		return err
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".move-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath) // no-op once renamed into place
	if _, err := io.Copy(tmp, in); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(info.Mode().Perm()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, dst); err != nil {
		return err
	}
	return os.Remove(src)
}

// Summary renders a one-paragraph report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "granules=%d files=%d bytes=%d tileFiles=%d tiles=%d labeled=%d shipped=%d elapsed=%s",
		r.GranulesRequested, r.FilesDownloaded, r.BytesDownloaded,
		r.TileFiles, r.TilesProduced, r.TilesLabeled, r.FilesShipped, r.Elapsed.Round(time.Millisecond))
	return b.String()
}
