package pipereg

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/eoml/eoml/internal/provenance"
)

func registryWithSchemas(t *testing.T) *Registry {
	t.Helper()
	schemas := provenance.NewSchemaRegistry()
	for _, s := range provenance.EOMLSchemas() {
		if err := schemas.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	return NewRegistry(schemas)
}

func TestPublishAndGetVersions(t *testing.T) {
	r := registryWithSchemas(t)
	v1, err := r.Publish(EOMLPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version != 1 || v1.Ref() != "eo-ml-cloud-classification@1" {
		t.Fatalf("v1 = %+v", v1)
	}
	p2 := EOMLPipeline()
	p2.Description = "v2 with continual learning"
	v2, err := r.Publish(p2)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Version != 2 {
		t.Fatalf("v2 = %d", v2.Version)
	}

	latest, err := r.Get("eo-ml-cloud-classification")
	if err != nil || latest.Version != 2 {
		t.Fatalf("latest = %+v, %v", latest, err)
	}
	pinned, err := r.Get("eo-ml-cloud-classification@1")
	if err != nil || pinned.Version != 1 {
		t.Fatalf("pinned = %+v, %v", pinned, err)
	}
	if _, err := r.Get("eo-ml-cloud-classification@9"); err == nil {
		t.Fatal("missing version found")
	}
	if _, err := r.Get("ghost"); err == nil {
		t.Fatal("missing pipeline found")
	}
	if _, err := r.Get("eo-ml-cloud-classification@x"); err == nil {
		t.Fatal("malformed ref accepted")
	}
}

func TestPublishValidation(t *testing.T) {
	r := registryWithSchemas(t)
	cases := []Pipeline{
		{},
		{Name: "bad name", Owner: "o", Components: []string{"download"}},
		{Name: "x@y", Owner: "o", Components: []string{"download"}},
		{Name: "x", Components: []string{"download"}},
		{Name: "x", Owner: "o"},
		{Name: "x", Owner: "o", Components: []string{"download", "inference"}}, // schema mismatch
		{Name: "x", Owner: "o", FlowJSON: json.RawMessage(`{"bogus": true}`)},
	}
	for i, p := range cases {
		if _, err := r.Publish(p); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestPublishWithFlowDefinition(t *testing.T) {
	r := registryWithSchemas(t)
	flowJSON := `{
		"StartAt": "Infer",
		"States": {
			"Infer": {"Type": "Action", "ActionProvider": "inference", "End": true}
		}
	}`
	p := Pipeline{
		Name:     "inference-only",
		Owner:    "anl",
		FlowJSON: json.RawMessage(flowJSON),
		Defaults: map[string]any{"batch": 128},
	}
	if _, err := r.Publish(p); err != nil {
		t.Fatal(err)
	}
	inst, err := r.Instantiate("inference-only", map[string]any{"batch": 256})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Flow == nil || inst.Flow.StartAt != "Infer" {
		t.Fatalf("flow not parsed: %+v", inst.Flow)
	}
	if inst.Params["batch"] != 256 {
		t.Fatalf("override lost: %v", inst.Params)
	}
}

func TestInstantiateDefaultsAndUnknownParam(t *testing.T) {
	r := registryWithSchemas(t)
	if _, err := r.Publish(EOMLPipeline()); err != nil {
		t.Fatal(err)
	}
	inst, err := r.Instantiate("eo-ml-cloud-classification", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Params["preprocess_workers"] != 32 {
		t.Fatalf("defaults: %v", inst.Params)
	}
	if _, err := r.Instantiate("eo-ml-cloud-classification", map[string]any{"bogus": 1}); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if _, err := r.Instantiate("ghost", nil); err == nil {
		t.Fatal("unknown pipeline instantiated")
	}
}

func TestListAndSearch(t *testing.T) {
	r := registryWithSchemas(t)
	if _, err := r.Publish(EOMLPipeline()); err != nil {
		t.Fatal(err)
	}
	other := Pipeline{
		Name: "esm-postproc", Owner: "nersc",
		Components: []string{"download"},
		Tags:       []string{"climate", "esm"},
	}
	if _, err := r.Publish(other); err != nil {
		t.Fatal(err)
	}
	if got := r.List(); len(got) != 2 || got[0].Name != "eo-ml-cloud-classification" {
		t.Fatalf("list = %v", got)
	}
	if got := r.Search("climate"); len(got) != 2 {
		t.Fatalf("search climate = %d", len(got))
	}
	if got := r.Search("climate", "MODIS"); len(got) != 1 || got[0].Name != "eo-ml-cloud-classification" {
		t.Fatalf("search modis = %v", got)
	}
	if got := r.Search("fusion"); len(got) != 0 {
		t.Fatalf("search fusion = %v", got)
	}
}

func TestExportImportFederation(t *testing.T) {
	// Facility A publishes; facility B imports — the "federated" story.
	a := registryWithSchemas(t)
	if _, err := a.Publish(EOMLPipeline()); err != nil {
		t.Fatal(err)
	}
	p2 := EOMLPipeline()
	p2.Description = "v2"
	if _, err := a.Publish(p2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Export(&buf); err != nil {
		t.Fatal(err)
	}

	b := NewRegistry(nil)
	if err := b.Import(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("eo-ml-cloud-classification")
	if err != nil || got.Version != 2 {
		t.Fatalf("imported latest = %+v, %v", got, err)
	}
	// Re-import conflicts.
	if err := b.Import(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("conflicting import accepted")
	}
	if err := b.Import(strings.NewReader("{oops")); err == nil {
		t.Fatal("garbage import accepted")
	}
}

func TestRegistryWithoutSchemasSkipsChainValidation(t *testing.T) {
	r := NewRegistry(nil)
	p := Pipeline{Name: "x", Owner: "o", Components: []string{"download", "inference"}}
	if _, err := r.Publish(p); err != nil {
		t.Fatalf("schema-free registry rejected chain: %v", err)
	}
}
