package ricc

import (
	"fmt"
	"math/rand"

	"github.com/eoml/eoml/internal/nn"
	"github.com/eoml/eoml/internal/tensor"
	"github.com/eoml/eoml/internal/tile"
)

// Continual learning support — the paper's §V roadmap: "AI applications
// are continually trained periodically on new data without
// catastrophically forgetting what had been learned previously". The
// mechanism here is experience replay: updates interleave new tiles with
// a reservoir of previously seen tiles, which bounds the drift of the
// encoder on old data. The continual-learning test demonstrates the
// catastrophic-forgetting failure mode with an empty replay buffer and
// its mitigation with a populated one.

// ReplayBuffer is a fixed-capacity reservoir sample of past training
// tiles.
type ReplayBuffer struct {
	capacity int
	seen     int
	tiles    []*tile.Tile
	rng      *rand.Rand
}

// NewReplayBuffer creates a reservoir of the given capacity.
func NewReplayBuffer(capacity int, seed int64) (*ReplayBuffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("ricc: replay capacity must be positive")
	}
	return &ReplayBuffer{capacity: capacity, rng: rand.New(rand.NewSource(seed))}, nil
}

// Add offers tiles to the reservoir (Vitter's algorithm R).
func (b *ReplayBuffer) Add(tiles []*tile.Tile) {
	for _, t := range tiles {
		b.seen++
		if len(b.tiles) < b.capacity {
			b.tiles = append(b.tiles, t)
			continue
		}
		if j := b.rng.Intn(b.seen); j < b.capacity {
			b.tiles[j] = t
		}
	}
}

// Len reports the current reservoir size.
func (b *ReplayBuffer) Len() int { return len(b.tiles) }

// Sample draws up to n tiles uniformly without replacement.
func (b *ReplayBuffer) Sample(n int) []*tile.Tile {
	if n >= len(b.tiles) {
		return append([]*tile.Tile(nil), b.tiles...)
	}
	idx := b.rng.Perm(len(b.tiles))[:n]
	out := make([]*tile.Tile, n)
	for i, j := range idx {
		out[i] = b.tiles[j]
	}
	return out
}

// ContinualUpdate fine-tunes a trained model on newTiles for the given
// number of epochs, mixing in replayed tiles from the buffer (if any) at
// a 1:1 ratio. The model's normalizer is kept fixed so embeddings remain
// comparable across updates — retraining it would silently relabel the
// whole archive. The buffer is updated with the new tiles afterwards.
func (m *Model) ContinualUpdate(newTiles []*tile.Tile, buffer *ReplayBuffer, epochs int) error {
	if m.Norm == nil {
		return fmt.Errorf("ricc: continual update requires a trained model")
	}
	if len(newTiles) == 0 {
		return fmt.Errorf("ricc: no new tiles")
	}
	if epochs <= 0 {
		epochs = 1
	}
	mix := append([]*tile.Tile(nil), newTiles...)
	if buffer != nil && buffer.Len() > 0 {
		mix = append(mix, buffer.Sample(len(newTiles))...)
	}

	rng := rand.New(rand.NewSource(m.Cfg.Seed + int64(41*len(mix))))
	opt := nn.NewAdam(m.Cfg.LR / 2) // conservative fine-tuning rate
	params := m.Params()

	for epoch := 0; epoch < epochs; epoch++ {
		perm := rng.Perm(len(mix))
		for start := 0; start < len(perm); start += m.Cfg.BatchSize {
			end := start + m.Cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			batch := make([]*tile.Tile, 0, end-start)
			for _, idx := range perm[start:end] {
				batch = append(batch, mix[idx])
			}
			x, err := TilesToTensor(batch, m.Norm)
			if err != nil {
				return err
			}
			nn.ZeroGrad(params)
			z := m.encoder.Forward(x)
			y := m.decoder.Forward(z)
			_, grad := nn.MSELoss(y, x)
			gz := m.decoder.Backward(grad)
			m.encoder.Backward(gz)
			if m.Cfg.Beta > 0 {
				zRef := z.Clone()
				for r := 1; r <= m.Cfg.Rotations; r++ {
					zr := m.encoder.Forward(tensor.Rot90(x, r))
					_, gzr := nn.EmbeddingMatchLoss(zr, zRef, m.Cfg.Beta)
					m.encoder.Backward(gzr)
				}
			}
			opt.Step(params)
		}
	}
	if buffer != nil {
		buffer.Add(newTiles)
	}
	return nil
}

// ReconstructionError returns the mean squared reconstruction error of
// the model on tiles — the forgetting metric of the continual tests.
func (m *Model) ReconstructionError(tiles []*tile.Tile) (float64, error) {
	if m.Norm == nil {
		return 0, fmt.Errorf("ricc: model has no normalizer")
	}
	x, err := TilesToTensor(tiles, m.Norm)
	if err != nil {
		return 0, err
	}
	y := m.decoder.Forward(m.encoder.Forward(x))
	loss, _ := nn.MSELoss(y, x)
	return loss, nil
}
