package pipereg

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunLifecycleSucceeds(t *testing.T) {
	reg := NewRunRegistry(2, 4)
	id := reg.Submit("acme", "meta-payload", func(ctx context.Context) (any, error) {
		return 42, nil
	})
	rec, err := reg.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateSucceeded || rec.Result != 42 || rec.Tenant != "acme" {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Meta != "meta-payload" {
		t.Fatalf("meta = %v", rec.Meta)
	}
	if rec.Started.IsZero() || rec.Finished.IsZero() {
		t.Fatal("terminal record missing timestamps")
	}
}

func TestRunLifecycleFails(t *testing.T) {
	reg := NewRunRegistry(1, 4)
	id := reg.Submit("", nil, func(ctx context.Context) (any, error) {
		return nil, fmt.Errorf("stage download: boom")
	})
	rec, _ := reg.Wait(context.Background(), id)
	if rec.State != StateFailed || rec.Error != "stage download: boom" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestRunCancelWhileRunning(t *testing.T) {
	reg := NewRunRegistry(1, 4)
	started := make(chan struct{})
	id := reg.Submit("", nil, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	if !reg.Cancel(id) {
		t.Fatal("cancel of a running run refused")
	}
	rec, _ := reg.Wait(context.Background(), id)
	if rec.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", rec.State)
	}
	if reg.Cancel(id) {
		t.Fatal("cancel of a terminal run accepted")
	}
}

func TestRunCancelWhilePending(t *testing.T) {
	reg := NewRunRegistry(1, 8)
	block := make(chan struct{})
	running := make(chan struct{})
	hog := reg.Submit("", nil, func(ctx context.Context) (any, error) {
		close(running)
		<-block
		return nil, nil
	})
	<-running
	var ran atomic.Bool
	queued := reg.Submit("", nil, func(ctx context.Context) (any, error) {
		ran.Store(true)
		return nil, nil
	})
	if rec, _ := reg.Get(queued); rec.State != StatePending {
		t.Fatalf("queued run state = %s, want pending", rec.State)
	}
	reg.Cancel(queued)
	rec, err := reg.Wait(context.Background(), queued)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", rec.State)
	}
	if ran.Load() {
		t.Fatal("canceled pending run still executed")
	}
	close(block)
	if rec, _ := reg.Wait(context.Background(), hog); rec.State != StateSucceeded {
		t.Fatalf("hog state = %s", rec.State)
	}
}

func TestRunConcurrencyBounded(t *testing.T) {
	const limit = 3
	reg := NewRunRegistry(limit, 64)
	var active, peak atomic.Int32
	var ids []string
	for i := 0; i < 12; i++ {
		ids = append(ids, reg.Submit("", nil, func(ctx context.Context) (any, error) {
			n := active.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			active.Add(-1)
			return nil, nil
		}))
	}
	for _, id := range ids {
		if _, err := reg.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", p, limit)
	}
}

func TestTerminalRunEviction(t *testing.T) {
	reg := NewRunRegistry(4, 2)
	var ids []string
	for i := 0; i < 5; i++ {
		id := reg.Submit("", fmt.Sprintf("meta-%d", i), func(ctx context.Context) (any, error) {
			return nil, nil
		})
		if _, err := reg.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if got := len(reg.List()); got != 2 {
		t.Fatalf("retained %d terminal runs, want 2", got)
	}
	if _, ok := reg.Get(ids[0]); ok {
		t.Fatal("oldest terminal run not evicted")
	}
	if rec, ok := reg.Get(ids[4]); !ok || rec.Meta != "meta-4" {
		t.Fatalf("newest run missing or lost meta: %+v", rec)
	}
}

// TestEvictionSkipsLiveRuns: retention counts only terminal runs — a
// long-running run is never evicted no matter how many finish after it.
func TestEvictionSkipsLiveRuns(t *testing.T) {
	reg := NewRunRegistry(4, 1)
	block := make(chan struct{})
	running := make(chan struct{})
	live := reg.Submit("", nil, func(ctx context.Context) (any, error) {
		close(running)
		<-block
		return nil, nil
	})
	<-running
	for i := 0; i < 4; i++ {
		id := reg.Submit("", nil, func(ctx context.Context) (any, error) { return nil, nil })
		if _, err := reg.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := reg.Get(live); !ok {
		t.Fatal("live run was evicted")
	}
	close(block)
	if rec, _ := reg.Wait(context.Background(), live); rec.State != StateSucceeded {
		t.Fatalf("live run state = %s", rec.State)
	}
}

// TestRunRegistryHammer drives submit/cancel/get/list/evict from many
// goroutines at once; run under -race this is the registry's
// concurrency-safety proof.
func TestRunRegistryHammer(t *testing.T) {
	reg := NewRunRegistry(4, 8)
	const submitters = 8
	const perSubmitter = 25
	var wg sync.WaitGroup
	ids := make(chan string, submitters*perSubmitter)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				id := reg.Submit(fmt.Sprintf("tenant-%d", seed%3), nil, func(ctx context.Context) (any, error) {
					select {
					case <-ctx.Done():
						return nil, ctx.Err()
					case <-time.After(time.Duration(seed+i) % 3 * time.Millisecond):
						return i, nil
					}
				})
				ids <- id
				if (seed+i)%4 == 0 {
					reg.Cancel(id)
				}
				reg.Get(id)
				reg.List()
			}
		}(s)
	}
	wg.Wait()
	close(ids)
	deadline, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for id := range ids {
		rec, err := reg.Wait(deadline, id)
		if err == nil && !rec.State.Terminal() {
			t.Fatalf("run %s finished wait in non-terminal state %s", id, rec.State)
		}
		// Evicted runs fail Wait with "no run" — that's fine; the point is
		// nothing deadlocks and every survivor is terminal.
	}
	for _, rec := range reg.List() {
		if !rec.State.Terminal() {
			if _, err := reg.Wait(deadline, rec.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
}
