package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonDiagnostic is the machine-readable shape of one finding: flat,
// stable field names, one object per line (JSON Lines), so CI scripts
// can `jq` the stream without a wrapper document.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// WriteJSON renders diagnostics as JSON Lines: one object per finding,
// in the driver's sorted order.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		jd := jsonDiagnostic{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}

// WriteGitHubAnnotations renders diagnostics as GitHub Actions workflow
// commands (`::error file=…,line=…::message`), so findings surface as
// inline annotations on the pull-request diff. Paths are the
// module-relative paths the driver already produces, which is what the
// runner expects for a checkout at the repo root.
func WriteGitHubAnnotations(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=eomlvet %s::%s\n",
			escapeAnnotationProperty(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
			escapeAnnotationProperty(d.Check), escapeAnnotationData(d.Message))
	}
}

// escapeAnnotationData escapes a workflow-command message: %, CR and LF
// must not terminate or fork the command.
func escapeAnnotationData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// escapeAnnotationProperty escapes a workflow-command property value,
// which additionally reserves ':' and ','.
func escapeAnnotationProperty(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}
