package nn

import (
	"math"

	"github.com/eoml/eoml/internal/tensor"
)

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	t       int
	moments map[*Param]*adamState
}

type adamState struct {
	m, v *tensor.T
}

// NewAdam returns an optimizer with the standard defaults for the given
// learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, moments: map[*Param]*adamState{}}
}

// Step applies one update using the accumulated gradients, then the caller
// is expected to ZeroGrad before the next batch.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		st, ok := a.moments[p]
		if !ok {
			st = &adamState{m: tensor.New(p.W.Shape...), v: tensor.New(p.W.Shape...)}
			a.moments[p] = st
		}
		for i, g := range p.G.Data {
			gf := float64(g)
			m := a.Beta1*float64(st.m.Data[i]) + (1-a.Beta1)*gf
			v := a.Beta2*float64(st.v.Data[i]) + (1-a.Beta2)*gf*gf
			st.m.Data[i] = float32(m)
			st.v.Data[i] = float32(v)
			p.W.Data[i] -= float32(a.LR * (m / c1) / (math.Sqrt(v/c2) + a.Eps))
		}
	}
}

// SGD is plain stochastic gradient descent, kept as the baseline
// optimizer for tests and ablations.
type SGD struct {
	LR float64
}

// Step applies one SGD update.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		for i, g := range p.G.Data {
			p.W.Data[i] -= float32(s.LR * float64(g))
		}
	}
}

// MSELoss computes mean squared error and its gradient with respect to
// pred: L = mean((pred-target)^2), dL/dpred = 2(pred-target)/n.
func MSELoss(pred, target *tensor.T) (float64, *tensor.T) {
	if !pred.SameShape(target) {
		panic("nn: MSE shape mismatch")
	}
	n := float64(pred.Len())
	grad := tensor.New(pred.Shape...)
	var sum float64
	for i := range pred.Data {
		d := float64(pred.Data[i]) - float64(target.Data[i])
		sum += d * d
		grad.Data[i] = float32(2 * d / n)
	}
	return sum / n, grad
}

// EmbeddingMatchLoss computes beta*mean((z - target)^2) treating target as
// a constant (stop-gradient), returning the loss and dL/dz. This is the
// rotation-invariance penalty of RICC: embeddings of rotated tiles are
// pulled toward the embedding of the canonical orientation.
func EmbeddingMatchLoss(z, target *tensor.T, beta float64) (float64, *tensor.T) {
	if !z.SameShape(target) {
		panic("nn: embedding shape mismatch")
	}
	n := float64(z.Len())
	grad := tensor.New(z.Shape...)
	var sum float64
	for i := range z.Data {
		d := float64(z.Data[i]) - float64(target.Data[i])
		sum += d * d
		grad.Data[i] = float32(beta * 2 * d / n)
	}
	return beta * sum / n, grad
}
