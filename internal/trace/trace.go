// Package trace records workflow telemetry: per-stage active-worker
// timelines (the data behind Fig. 6) and named latency spans (the data
// behind Fig. 7). It works with both real wall-clock time and virtual DES
// time, since samples and spans carry plain float64 seconds.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Sample is one point of a worker-count timeline.
type Sample struct {
	T     float64 // seconds since workflow start
	Count int     // active workers at T
}

// Timeline records worker-activity samples for named stages.
type Timeline struct {
	mu     sync.Mutex
	stages map[string][]Sample
}

// NewTimeline returns an empty recorder.
func NewTimeline() *Timeline {
	return &Timeline{stages: map[string][]Sample{}}
}

// Record appends a sample for a stage. Samples should arrive in
// non-decreasing time order per stage; out-of-order samples are accepted
// and sorted on read.
func (tl *Timeline) Record(stage string, t float64, count int) {
	tl.mu.Lock()
	tl.stages[stage] = append(tl.stages[stage], Sample{T: t, Count: count})
	tl.mu.Unlock()
}

// Stages lists recorded stage names, sorted.
func (tl *Timeline) Stages() []string {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]string, 0, len(tl.stages))
	for s := range tl.stages {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Samples returns a stage's samples in time order.
func (tl *Timeline) Samples(stage string) []Sample {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := append([]Sample(nil), tl.stages[stage]...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// CountAt returns the stage's worker count at time t (the most recent
// sample at or before t; zero before the first sample).
func (tl *Timeline) CountAt(stage string, t float64) int {
	samples := tl.Samples(stage)
	count := 0
	for _, s := range samples {
		if s.T > t {
			break
		}
		count = s.Count
	}
	return count
}

// PeakCount returns the maximum worker count observed for a stage.
func (tl *Timeline) PeakCount(stage string) int {
	peak := 0
	for _, s := range tl.Samples(stage) {
		if s.Count > peak {
			peak = s.Count
		}
	}
	return peak
}

// Render draws an ASCII timeline (one row per stage, resolution buckets
// across [0, end]), the textual form of Fig. 6. Each bucket shows the
// maximum worker count observed within it, so short inference blips stay
// visible at coarse resolutions.
func (tl *Timeline) Render(end float64, buckets int) string {
	if buckets <= 0 {
		buckets = 60
	}
	var b strings.Builder
	for _, stage := range tl.Stages() {
		samples := tl.Samples(stage)
		peak := tl.PeakCount(stage)
		fmt.Fprintf(&b, "%-12s |", stage)
		si := 0
		carry := 0
		for i := 0; i < buckets; i++ {
			t0 := end * float64(i) / float64(buckets)
			t1 := end * float64(i+1) / float64(buckets)
			// Advance to the bucket start, tracking the carried count.
			for si < len(samples) && samples[si].T <= t0 {
				carry = samples[si].Count
				si++
			}
			maxC := carry
			for j := si; j < len(samples) && samples[j].T < t1; j++ {
				if samples[j].Count > maxC {
					maxC = samples[j].Count
				}
			}
			b.WriteByte(glyph(maxC, peak))
		}
		fmt.Fprintf(&b, "| peak=%d\n", peak)
	}
	return b.String()
}

func glyph(count, peak int) byte {
	if count <= 0 {
		return ' '
	}
	levels := []byte{'.', ':', '-', '=', '#', '@'}
	if peak <= 0 {
		peak = 1
	}
	idx := count * len(levels) / (peak + 1)
	if idx >= len(levels) {
		idx = len(levels) - 1
	}
	return levels[idx]
}

// Span is one named latency measurement.
type Span struct {
	Name     string
	Start    float64
	End      float64
	Children []string // names of sub-spans, for rendering
}

// Duration returns End-Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// Spans collects named latency spans (Fig. 7's boxes and arrows).
type Spans struct {
	mu    sync.Mutex
	spans []Span
	index map[string]int
}

// NewSpans returns an empty span set.
func NewSpans() *Spans {
	return &Spans{index: map[string]int{}}
}

// Add records a completed span. Re-adding a name overwrites it.
func (s *Spans) Add(name string, start, end float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.index[name]; ok {
		s.spans[i] = Span{Name: name, Start: start, End: end}
		return
	}
	s.index[name] = len(s.spans)
	s.spans = append(s.spans, Span{Name: name, Start: start, End: end})
}

// SpanHandle is an in-progress span opened by Begin. The span is not
// recorded until End runs — eomlvet's spanpair check enforces that every
// Begin has a reachable End (or hands the handle to an owner that does).
type SpanHandle struct {
	s     *Spans
	name  string
	start float64
}

// Begin opens a named span at start seconds. The returned handle's End
// records the completed span; a handle that is never Ended records
// nothing.
func (s *Spans) Begin(name string, start float64) *SpanHandle {
	return &SpanHandle{s: s, name: name, start: start}
}

// End completes the span at end seconds, recording it (overwriting any
// prior span with the same name, like Add).
func (h *SpanHandle) End(end float64) {
	h.s.Add(h.name, h.start, end)
}

// Name returns the span name the handle was begun with.
func (h *SpanHandle) Name() string { return h.name }

// Start returns the span's start time in seconds.
func (h *SpanHandle) Start() float64 { return h.start }

// Get fetches a span by name.
func (s *Spans) Get(name string) (Span, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[name]
	if !ok {
		return Span{}, false
	}
	return s.spans[i], true
}

// All returns spans in insertion order.
func (s *Spans) All() []Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Span(nil), s.spans...)
}

// Gap returns the idle time between the end of span a and the start of
// span b — the inter-stage communication latency of Fig. 7.
func (s *Spans) Gap(a, b string) (float64, error) {
	sa, ok := s.Get(a)
	if !ok {
		return 0, fmt.Errorf("trace: no span %q", a)
	}
	sb, ok := s.Get(b)
	if !ok {
		return 0, fmt.Errorf("trace: no span %q", b)
	}
	return sb.Start - sa.End, nil
}

// Render prints a latency breakdown table.
func (s *Spans) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s %12s %12s\n", "span", "start (s)", "end (s)", "duration (s)")
	for _, sp := range s.All() {
		fmt.Fprintf(&b, "%-28s %12.3f %12.3f %12.3f\n", sp.Name, sp.Start, sp.End, sp.Duration())
	}
	return b.String()
}
