package ricc

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

// cosine returns the cosine similarity of two latent vectors.
func cosine(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// TestEncodeBatchQ8CosineFloor pins every quantized latent to its float
// oracle with a cosine-similarity floor on a trained model: the int8
// path may perturb coordinates by quantization noise but must not
// rotate latents away from the float embedding.
func TestEncodeBatchQ8CosineFloor(t *testing.T) {
	cfg := smallConfig()
	cfg.Epochs = 2
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiles := syntheticTiles(300, cfg.TileSize, cfg.Channels, 10) // >maxBatch: two batches
	if _, err := m.Train(tiles[:64]); err != nil {
		t.Fatal(err)
	}
	want, err := m.EncodeBatch(tiles)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.EncodeBatchQ8(tiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	// Per-tile worst case is looser than the mean: a lightly-trained
	// model emits near-zero latents where half-step noise looms large.
	const tileFloor, meanFloor = 0.98, 0.995
	var sum float64
	for i := range want {
		cos := cosine(got[i], want[i])
		sum += cos
		if cos < tileFloor {
			t.Fatalf("tile %d: quantized latent cosine %g < %g\nq8:    %v\nfloat: %v",
				i, cos, tileFloor, got[i], want[i])
		}
	}
	if mean := sum / float64(len(want)); mean < meanFloor {
		t.Fatalf("mean quantized latent cosine %g < %g", mean, meanFloor)
	}
}

// TestEncodeBatchQ8Deterministic demands bit-identical latents across
// repeated and concurrent Q8 encodes: int32 accumulation is
// order-independent, so the int8 path is exactly reproducible — the
// reproducibility guarantee the config's precision knob advertises.
func TestEncodeBatchQ8Deterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.Epochs = 2
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiles := syntheticTiles(80, cfg.TileSize, cfg.Channels, 11)
	if _, err := m.Train(tiles[:64]); err != nil {
		t.Fatal(err)
	}
	ref, err := m.EncodeBatchQ8(tiles)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				got, err := m.EncodeBatchQ8(tiles)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got, ref) {
					t.Error("concurrent Q8 encode diverged — int8 path must be bit-exact")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestEncodeBatchQ8RequiresTraining(t *testing.T) {
	m, err := NewModel(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tiles := syntheticTiles(4, 8, 3, 12)
	if _, err := m.EncodeBatchQ8(tiles); err == nil {
		t.Fatal("Q8 encode on untrained model must fail")
	}
}
