// Package ricc implements Rotationally Invariant Cloud Clustering: a
// convolutional autoencoder whose latent space is trained to be invariant
// to 90° tile rotations, paired with agglomerative clustering of the
// latent vectors (package cluster42) to define AICCA cloud classes.
//
// The original RICC (Kurihana et al., TGRS 2021) trains on ~1M MODIS
// tiles in TensorFlow; this reproduction trains a scaled-down model on
// synthetic tiles with the same structural ingredients: a conv
// encoder/decoder, a reconstruction loss, and a rotation-invariance
// penalty that pulls embeddings of rotated copies together. Inference —
// encode a tile, assign the nearest cluster centroid — is the code path
// the workflow's stage 4 exercises.
package ricc

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/eoml/eoml/internal/nn"
	"github.com/eoml/eoml/internal/tensor"
	"github.com/eoml/eoml/internal/tile"
)

// Config describes the autoencoder and its training.
type Config struct {
	TileSize  int     // tile edge in pixels; must be divisible by 4
	Channels  int     // input channels (6 for AICCA band selection)
	LatentDim int     // embedding width
	Beta      float64 // rotation-invariance penalty weight (0 disables)
	LR        float64 // Adam learning rate
	Epochs    int
	BatchSize int
	Rotations int   // rotated copies per batch, 0..3
	Seed      int64 // weight init and shuffling seed
}

// DefaultConfig returns the configuration used by the workflow at
// container scale (16×16×6 tiles).
func DefaultConfig() Config {
	return Config{
		TileSize:  16,
		Channels:  6,
		LatentDim: 32,
		Beta:      0.5,
		LR:        1e-3,
		Epochs:    8,
		BatchSize: 32,
		Rotations: 3,
		Seed:      1,
	}
}

func (c Config) validate() error {
	if c.TileSize < 4 || c.TileSize%4 != 0 {
		return fmt.Errorf("ricc: tile size %d must be a positive multiple of 4", c.TileSize)
	}
	if c.Channels <= 0 || c.LatentDim <= 0 || c.BatchSize <= 0 {
		return fmt.Errorf("ricc: non-positive dimension in config %+v", c)
	}
	if c.Rotations < 0 || c.Rotations > 3 {
		return fmt.Errorf("ricc: rotations %d out of range [0,3]", c.Rotations)
	}
	return nil
}

// Model is the rotation-invariant autoencoder.
type Model struct {
	Cfg     Config
	Norm    *Normalizer
	encoder *nn.Sequential
	decoder *nn.Sequential
	// shards recycles input, scratch, and activation buffers across
	// inference calls: each Encode/Reconstruct call checks a private
	// LocalArena out for its duration, so concurrent calls never contend
	// on the per-tensor fast path and steady-state serving stops
	// regrowing the heap.
	shards *tensor.ShardedArena
	// locked is the previous sync.Pool-backed arena, kept as the
	// contended oracle EncodeLocked (and BenchmarkEncodeArena) measures
	// the sharded design against.
	locked *tensor.Arena
}

// NewModel builds an untrained model with deterministic initialization.
func NewModel(cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ts, ch := cfg.TileSize, cfg.Channels
	const c1, c2 = 16, 32
	q := ts / 4 // spatial size after two stride-2 convs

	e1, err := nn.NewConv2D("enc.c1", ch, c1, 3, 2, 1, ts, ts, rng)
	if err != nil {
		return nil, err
	}
	e2, err := nn.NewConv2D("enc.c2", c1, c2, 3, 2, 1, ts/2, ts/2, rng)
	if err != nil {
		return nil, err
	}
	encoder := nn.NewSequential("encoder",
		e1, nn.NewLeakyReLU("enc.a1", 0.1),
		e2, nn.NewLeakyReLU("enc.a2", 0.1),
		nn.NewFlatten("enc.flat"),
		nn.NewDense("enc.latent", c2*q*q, cfg.LatentDim, rng),
	)

	d1, err := nn.NewConv2D("dec.c1", c2, c1, 3, 1, 1, ts/2, ts/2, rng)
	if err != nil {
		return nil, err
	}
	d2, err := nn.NewConv2D("dec.c2", c1, ch, 3, 1, 1, ts, ts, rng)
	if err != nil {
		return nil, err
	}
	decoder := nn.NewSequential("decoder",
		nn.NewDense("dec.expand", cfg.LatentDim, c2*q*q, rng),
		nn.NewLeakyReLU("dec.a0", 0.1),
		nn.NewReshape4D("dec.reshape", c2, q, q),
		nn.NewUpsample2x("dec.up1"),
		d1, nn.NewLeakyReLU("dec.a1", 0.1),
		nn.NewUpsample2x("dec.up2"),
		d2, nn.NewSigmoid("dec.out"),
	)
	return &Model{
		Cfg: cfg, encoder: encoder, decoder: decoder,
		shards: tensor.NewShardedArena(), locked: tensor.NewArena(),
	}, nil
}

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param {
	return append(m.encoder.Params(), m.decoder.Params()...)
}

// Arena returns the model's sharded buffer arena (nil on a nil model),
// so callers can instrument its reuse counters.
func (m *Model) Arena() *tensor.ShardedArena {
	if m == nil {
		return nil
	}
	return m.shards
}

// Normalizer rescales tile radiances to [0, 1] per band using the range
// observed in the training set.
type Normalizer struct {
	Min, Max []float32 // per band
}

// FitNormalizer computes per-band ranges over a tile set.
func FitNormalizer(tiles []*tile.Tile) (*Normalizer, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("ricc: no tiles to fit normalizer")
	}
	nb := len(tiles[0].Bands)
	n := &Normalizer{Min: make([]float32, nb), Max: make([]float32, nb)}
	for b := 0; b < nb; b++ {
		n.Min[b] = float32(1e30)
		n.Max[b] = float32(-1e30)
	}
	for _, t := range tiles {
		if len(t.Bands) != nb {
			return nil, fmt.Errorf("ricc: tile band count %d, want %d", len(t.Bands), nb)
		}
		npix := t.TileSize * t.TileSize
		for b := 0; b < nb; b++ {
			for _, v := range t.Data[b*npix : (b+1)*npix] {
				if v < n.Min[b] {
					n.Min[b] = v
				}
				if v > n.Max[b] {
					n.Max[b] = v
				}
			}
		}
	}
	for b := 0; b < nb; b++ {
		if n.Max[b] <= n.Min[b] {
			n.Max[b] = n.Min[b] + 1 // degenerate band: map to 0
		}
	}
	return n, nil
}

// apply normalizes one raw value of band b.
func (n *Normalizer) apply(b int, v float32) float32 {
	return (v - n.Min[b]) / (n.Max[b] - n.Min[b])
}

// TilesToTensor packs tiles into an NCHW batch tensor, normalized to
// [0, 1].
func TilesToTensor(tiles []*tile.Tile, norm *Normalizer) (*tensor.T, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("ricc: empty tile batch")
	}
	nb, ts := len(tiles[0].Bands), tiles[0].TileSize
	out := tensor.New(len(tiles), nb, ts, ts)
	if err := fillTileTensor(out, tiles, norm); err != nil {
		return nil, err
	}
	return out, nil
}

// fillTileTensor packs tiles into dst, which must have shape
// [len(tiles), nb, ts, ts]. Every element is written, so dirty
// arena-recycled buffers are fine.
func fillTileTensor(dst *tensor.T, tiles []*tile.Tile, norm *Normalizer) error {
	nb, ts := dst.Shape[1], dst.Shape[2]
	npix := ts * ts
	for i, t := range tiles {
		if len(t.Bands) != nb || t.TileSize != ts {
			return fmt.Errorf("ricc: heterogeneous tile %d in batch", i)
		}
		row := dst.Data[i*nb*npix : (i+1)*nb*npix]
		for b := 0; b < nb; b++ {
			for p, v := range t.Data[b*npix : (b+1)*npix] {
				row[b*npix+p] = norm.apply(b, v)
			}
		}
	}
	return nil
}

// EpochStats records per-epoch training losses.
type EpochStats struct {
	Epoch          int
	Reconstruction float64
	Invariance     float64
}

// Train fits the autoencoder on tiles. It fits the normalizer as a side
// effect and returns per-epoch loss history.
func (m *Model) Train(tiles []*tile.Tile) ([]EpochStats, error) {
	if len(tiles) < 2 {
		return nil, fmt.Errorf("ricc: need at least 2 training tiles, have %d", len(tiles))
	}
	norm, err := FitNormalizer(tiles)
	if err != nil {
		return nil, err
	}
	m.Norm = norm

	rng := rand.New(rand.NewSource(m.Cfg.Seed + 1))
	opt := nn.NewAdam(m.Cfg.LR)
	params := m.Params()
	var history []EpochStats

	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		perm := rng.Perm(len(tiles))
		var recSum, invSum float64
		batches := 0
		for start := 0; start < len(perm); start += m.Cfg.BatchSize {
			end := start + m.Cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			batch := make([]*tile.Tile, 0, end-start)
			for _, idx := range perm[start:end] {
				batch = append(batch, tiles[idx])
			}
			x, err := TilesToTensor(batch, norm)
			if err != nil {
				return nil, err
			}

			nn.ZeroGrad(params)

			// Reconstruction pass.
			z := m.encoder.Forward(x)
			y := m.decoder.Forward(z)
			rec, grad := nn.MSELoss(y, x)
			gz := m.decoder.Backward(grad)
			m.encoder.Backward(gz)
			zRef := z.Clone() // stop-gradient target for the invariance passes

			// Rotation-invariance passes: pull embeddings of rotated
			// copies toward the canonical embedding.
			var inv float64
			if m.Cfg.Beta > 0 {
				for r := 1; r <= m.Cfg.Rotations; r++ {
					zr := m.encoder.Forward(tensor.Rot90(x, r))
					li, gzr := nn.EmbeddingMatchLoss(zr, zRef, m.Cfg.Beta)
					inv += li
					m.encoder.Backward(gzr)
				}
			}

			opt.Step(params)
			recSum += rec
			invSum += inv
			batches++
		}
		history = append(history, EpochStats{
			Epoch:          epoch,
			Reconstruction: recSum / float64(batches),
			Invariance:     invSum / float64(batches),
		})
	}
	return history, nil
}

// encodeWith is the shared encode core: pack tiles into allocator
// buffers in bounded batches, run the encoder through the given
// inference step (the float batch-GEMM path or the int8 path), and copy
// the latent rows out into one caller-owned backing slab (one
// allocation for the whole call).
func (m *Model) encodeWith(tiles []*tile.Tile, a tensor.Allocator,
	infer func(*tensor.T, tensor.Allocator) *tensor.T) ([][]float32, error) {
	if m.Norm == nil {
		return nil, fmt.Errorf("ricc: model has no normalizer; train or load first")
	}
	d := m.Cfg.LatentDim
	out := make([][]float32, len(tiles))
	backing := make([]float32, len(tiles)*d)
	// Encode in bounded batches to cap peak memory.
	const maxBatch = 256
	for start := 0; start < len(tiles); start += maxBatch {
		end := start + maxBatch
		if end > len(tiles) {
			end = len(tiles)
		}
		n := end - start
		nb, ts := len(tiles[start].Bands), tiles[start].TileSize
		x := a.Get(n, nb, ts, ts)
		if err := fillTileTensor(x, tiles[start:end], m.Norm); err != nil {
			a.Put(x)
			return nil, err
		}
		z := infer(x, a)
		copy(backing[start*d:end*d], z.Data[:n*d])
		a.Put(z)
		a.Put(x)
		for i := start; i < end; i++ {
			out[i] = backing[i*d : (i+1)*d : (i+1)*d]
		}
	}
	return out, nil
}

// EncodeBatch maps tiles to latent vectors using the trained model: the
// whole batch goes through one blocked GEMM per layer (nn.InferBatch),
// with input packing, the im2col matrix, and activations all recycled
// through a LocalArena shard checked out for the duration of the call.
// Concurrent calls each get their own shard, so the per-tensor fast
// path never synchronizes. The returned rows are packed into one
// backing slab owned by the caller.
func (m *Model) EncodeBatch(tiles []*tile.Tile) ([][]float32, error) {
	shard := m.shards.Acquire()
	defer m.shards.Release(shard)
	return m.encodeWith(tiles, shard, m.encoder.InferBatch)
}

// EncodeBatchQ8 is EncodeBatch through the symmetric int8 inference
// path: per-output-channel quantized weights (cached on the layers),
// per-tensor quantized activations, int8×int8→int32 GEMMs. The float
// EncodeBatch is the accuracy oracle; the aicca property tests pin the
// label-flip rate and a latent cosine-similarity floor between the two.
// Output is bit-exactly reproducible run to run.
func (m *Model) EncodeBatchQ8(tiles []*tile.Tile) ([][]float32, error) {
	shard := m.shards.Acquire()
	defer m.shards.Release(shard)
	return m.encodeWith(tiles, shard, m.encoder.InferBatchQ8)
}

// Encode is EncodeBatch: the batch-GEMM sharded-arena path is the fast
// path at every batch size (BENCH_5 measures N=1 through N=512), so
// there is no separate small-batch entry point.
func (m *Model) Encode(tiles []*tile.Tile) ([][]float32, error) {
	return m.EncodeBatch(tiles)
}

// EncodeLocked runs the same batch-GEMM kernels as EncodeBatch but
// through the model's sync.Pool-backed Arena, which synchronizes every
// Get/Put. It exists as the contended oracle: BenchmarkEncodeArena
// measures the sharded path against it to keep the locking cost
// visible.
func (m *Model) EncodeLocked(tiles []*tile.Tile) ([][]float32, error) {
	return m.encodeWith(tiles, m.locked, m.encoder.InferBatch)
}

// EncodeNoArena is the reference implementation of Encode with no
// buffer reuse: the stateful Forward path plus one fresh row copy per
// tile. It is the oracle the arena path is tested against and the
// baseline BenchmarkEncodeArena measures allocation savings from.
func (m *Model) EncodeNoArena(tiles []*tile.Tile) ([][]float32, error) {
	if m.Norm == nil {
		return nil, fmt.Errorf("ricc: model has no normalizer; train or load first")
	}
	out := make([][]float32, 0, len(tiles))
	const maxBatch = 256
	for start := 0; start < len(tiles); start += maxBatch {
		end := start + maxBatch
		if end > len(tiles) {
			end = len(tiles)
		}
		x, err := TilesToTensor(tiles[start:end], m.Norm)
		if err != nil {
			return nil, err
		}
		z := m.encoder.Forward(x)
		for i := 0; i < z.Shape[0]; i++ {
			row := make([]float32, m.Cfg.LatentDim)
			copy(row, z.Data[i*m.Cfg.LatentDim:(i+1)*m.Cfg.LatentDim])
			out = append(out, row)
		}
	}
	return out, nil
}

// Reconstruct runs the full autoencoder on tiles, returning the decoder
// output batch (used by diagnostics and examples).
func (m *Model) Reconstruct(tiles []*tile.Tile) (*tensor.T, error) {
	if m.Norm == nil {
		return nil, fmt.Errorf("ricc: model has no normalizer; train or load first")
	}
	x, err := TilesToTensor(tiles, m.Norm)
	if err != nil {
		return nil, err
	}
	a := m.shards.Acquire()
	defer m.shards.Release(a)
	z := m.encoder.InferBatch(x, a)
	y := m.decoder.InferBatch(z, a)
	a.Put(z)
	out := y.Clone() // hand the caller its own buffer, recycle the arena's
	a.Put(y)
	return out, nil
}

// InvarianceError measures how far embeddings move under 90° rotation:
// mean over tiles and rotations of ‖z_rot − z‖ / (‖z‖ + ε). Lower is more
// invariant; the rotation-loss ablation compares trained models with and
// without Beta.
func (m *Model) InvarianceError(tiles []*tile.Tile) (float64, error) {
	if m.Norm == nil {
		return 0, fmt.Errorf("ricc: model has no normalizer; train or load first")
	}
	x, err := TilesToTensor(tiles, m.Norm)
	if err != nil {
		return 0, err
	}
	a := m.shards.Acquire()
	defer m.shards.Release(a)
	z := m.encoder.InferBatch(x, a)
	n, d := z.Shape[0], z.Shape[1]
	var total float64
	count := 0
	for r := 1; r <= 3; r++ {
		zr := m.encoder.InferBatch(tensor.Rot90(x, r), a)
		for i := 0; i < n; i++ {
			var diff, norm float64
			for j := 0; j < d; j++ {
				dv := float64(zr.Data[i*d+j] - z.Data[i*d+j])
				diff += dv * dv
				nv := float64(z.Data[i*d+j])
				norm += nv * nv
			}
			total += math.Sqrt(diff) / (math.Sqrt(norm) + 1e-9)
			count++
		}
		a.Put(zr)
	}
	a.Put(z)
	return total / float64(count), nil
}
